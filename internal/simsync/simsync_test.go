package simsync

import (
	"runtime"
	"sync"
	"testing"

	"predator/internal/core"
	"predator/internal/instr"
	"predator/internal/mem"
	"predator/internal/report"
)

// env builds a heap + runtime + instrumenter with test thresholds.
func env(t *testing.T) (*instr.Instrumenter, *core.Runtime) {
	t.Helper()
	h, err := mem.NewHeap(mem.Config{Size: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(h, core.Config{
		TrackingThreshold:   10,
		PredictionThreshold: 20,
		ReportThreshold:     50,
		Prediction:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return instr.New(h, rt, instr.Policy{}), rt
}

func TestMutexPoolMutualExclusion(t *testing.T) {
	in, _ := env(t)
	main := in.NewThread("main")
	pool, err := NewMutexPool(main, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	counters := make([]int, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := in.NewThread("w")
		wg.Add(1)
		go func(th *instr.Thread) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				lock := i % pool.Len()
				pool.With(th, lock, func() { counters[lock]++ })
			}
		}(th)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 4*2000 {
		t.Errorf("lost updates: %d", total)
	}
}

func TestPackedPoolFalselyShares(t *testing.T) {
	in, rt := env(t)
	main := in.NewThread("main")
	pool, err := NewMutexPool(main, 16, 4) // 16 locks in one cache line
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := in.NewThread("w")
		wg.Add(1)
		go func(th *instr.Thread, id int) {
			defer wg.Done()
			for i := 0; i < 8000; i++ {
				// Thread-affine locks: cross-lock contention only.
				lock := (id*4 + i%4) % pool.Len()
				pool.Lock(th, lock)
				pool.Unlock(th, lock)
				if i%16 == 15 {
					runtime.Gosched()
				}
			}
		}(th, w)
	}
	wg.Wait()
	rep := rt.Report()
	found := false
	for _, f := range rep.FalseSharing() {
		if obj, ok := f.PrimaryObject(); ok && obj.Start == pool.Base() {
			found = true
		}
	}
	if !found {
		t.Errorf("packed mutex pool not flagged:\n%s", rep.String())
	}
}

func TestPaddedPoolClean(t *testing.T) {
	in, rt := env(t)
	main := in.NewThread("main")
	pool, err := NewMutexPool(main, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := in.NewThread("w")
		wg.Add(1)
		go func(th *instr.Thread, id int) {
			defer wg.Done()
			for i := 0; i < 8000; i++ {
				lock := (id*4 + i%4) % pool.Len()
				pool.Lock(th, lock)
				pool.Unlock(th, lock)
				if i%16 == 15 {
					runtime.Gosched()
				}
			}
		}(th, w)
	}
	wg.Wait()
	if fs := rt.Report().FalseSharing(); len(fs) != 0 {
		t.Errorf("padded pool flagged: %d findings", len(fs))
	}
}

func TestCounterArrayPackedVsPadded(t *testing.T) {
	for _, tc := range []struct {
		stride uint64
		dirty  bool
	}{{8, true}, {128, false}} {
		in, rt := env(t)
		main := in.NewThread("main")
		arr, err := NewCounterArray(main, 8, tc.stride)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			th := in.NewThread("w")
			wg.Add(1)
			go func(th *instr.Thread, id int) {
				defer wg.Done()
				for i := 0; i < 8000; i++ {
					arr.Add(th, id, 1)
					if i%16 == 15 {
						runtime.Gosched()
					}
				}
			}(th, w)
		}
		wg.Wait()
		got := len(rt.Report().FalseSharing()) > 0
		if got != tc.dirty {
			t.Errorf("stride %d: false sharing = %v, want %v", tc.stride, got, tc.dirty)
		}
		if sum := arr.Load(main, 0); sum != 8000 {
			t.Errorf("stride %d: counter 0 = %d", tc.stride, sum)
		}
	}
}

func TestSimBarrierSynchronizesAndClassifiesTrue(t *testing.T) {
	in, rt := env(t)
	main := in.NewThread("main")
	const parties = 4
	b, err := NewSimBarrier(main, parties)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 500
	var mu sync.Mutex
	maxInRound := 0
	inRound := 0
	var wg sync.WaitGroup
	for w := 0; w < parties; w++ {
		th := in.NewThread("w")
		wg.Add(1)
		go func(th *instr.Thread) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				inRound++
				if inRound > maxInRound {
					maxInRound = inRound
				}
				mu.Unlock()
				b.Wait(th)
				mu.Lock()
				inRound--
				mu.Unlock()
			}
		}(th)
	}
	wg.Wait()
	if maxInRound != parties {
		t.Errorf("barrier never gathered all %d parties (max %d)", parties, maxInRound)
	}
	// The barrier words are heavy TRUE sharing — they must never be
	// reported as false sharing.
	if fs := rt.Report().FalseSharing(); len(fs) != 0 {
		t.Errorf("barrier words misclassified as false sharing:\n%s", rt.Report().String())
	}
	sawTrue := false
	for _, f := range rt.Report().Findings {
		if f.Sharing == report.SharingTrue {
			sawTrue = true
		}
	}
	if !sawTrue {
		t.Error("barrier contention produced no true-sharing finding")
	}
}

func TestConstructorValidation(t *testing.T) {
	in, _ := env(t)
	main := in.NewThread("main")
	if _, err := NewMutexPool(main, 0, 64); err == nil {
		t.Error("zero-size pool accepted")
	}
	if _, err := NewMutexPool(main, 4, 2); err == nil {
		t.Error("sub-word stride accepted")
	}
	if _, err := NewCounterArray(main, -1, 64); err == nil {
		t.Error("negative counter array accepted")
	}
	if _, err := NewCounterArray(main, 4, 4); err == nil {
		t.Error("sub-word counter stride accepted")
	}
	if _, err := NewSimBarrier(main, 0); err == nil {
		t.Error("zero-party barrier accepted")
	}
}
