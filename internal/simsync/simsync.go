// Package simsync provides pthread-style synchronization primitives whose
// state lives ON the simulated heap, accessed through the instrumented
// accessors. In the paper's setting this is automatic — pthread mutexes are
// ordinary memory, so the instrumentation sees every lock-word access and
// PREDATOR can catch false sharing *among the synchronization objects
// themselves* (the Boost spinlock pool is exactly that). Here the primitives
// make that pattern reusable: allocate a MutexPool or CounterArray and the
// detector observes the same lock-word traffic a native pthread program
// would generate.
//
// Real mutual exclusion is provided by shadow Go mutexes; the simulated
// lock words carry the access pattern. Packed layouts (stride = word size)
// reproduce the contended-pool bug; padded layouts are the fix.
package simsync

import (
	"fmt"
	"sync"

	"predator/internal/instr"
)

// MutexPool is an array of simulated mutexes, boost::detail::spinlock_pool
// style. Each lock occupies Stride bytes starting at Base.
type MutexPool struct {
	base   uint64
	stride uint64
	n      int
	shadow []sync.Mutex
}

// NewMutexPool allocates n lock words with the given stride (4 = packed,
// the Boost bug; >= 128 = padded, the fix) from the thread's arena.
func NewMutexPool(t *instr.Thread, n int, stride uint64) (*MutexPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simsync: pool size must be positive, got %d", n)
	}
	if stride < 4 {
		return nil, fmt.Errorf("simsync: stride %d below lock word size", stride)
	}
	base, err := t.AllocWithOffset(stride*uint64(n), 0)
	if err != nil {
		return nil, err
	}
	return &MutexPool{base: base, stride: stride, n: n, shadow: make([]sync.Mutex, n)}, nil
}

// Len returns the number of locks in the pool.
func (p *MutexPool) Len() int { return p.n }

// Base returns the pool's starting address (for report assertions).
func (p *MutexPool) Base() uint64 { return p.base }

// addr returns lock i's word address.
func (p *MutexPool) addr(i int) uint64 { return p.base + uint64(i)*p.stride }

// Lock acquires lock i on behalf of thread t, emitting the test-and-set
// access pattern a native spinlock would.
func (p *MutexPool) Lock(t *instr.Thread, i int) {
	p.shadow[i].Lock()
	// With the shadow mutex held the simulated word is always free; the
	// load+store pair is the uncontended fast path every spinlock runs.
	for t.Load32(p.addr(i)) != 0 {
	}
	t.Store32(p.addr(i), 1)
}

// Unlock releases lock i.
func (p *MutexPool) Unlock(t *instr.Thread, i int) {
	t.Store32(p.addr(i), 0)
	p.shadow[i].Unlock()
}

// With runs fn under lock i.
func (p *MutexPool) With(t *instr.Thread, i int, fn func()) {
	p.Lock(t, i)
	defer p.Unlock(t, i)
	fn()
}

// CounterArray is an array of per-slot counters on the simulated heap —
// the recurring per-thread statistics pattern. Packed strides reproduce the
// paper's most common bug; padded strides are the fix.
type CounterArray struct {
	base   uint64
	stride uint64
	n      int
}

// NewCounterArray allocates n counters with the given stride (8 = packed,
// >= 128 = padded).
func NewCounterArray(t *instr.Thread, n int, stride uint64) (*CounterArray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simsync: counter array size must be positive, got %d", n)
	}
	if stride < 8 {
		return nil, fmt.Errorf("simsync: stride %d below counter word size", stride)
	}
	base, err := t.AllocWithOffset(stride*uint64(n), 0)
	if err != nil {
		return nil, err
	}
	return &CounterArray{base: base, stride: stride, n: n}, nil
}

// Base returns the array's starting address.
func (c *CounterArray) Base() uint64 { return c.base }

// Add bumps counter i by delta. Counters are owned per thread by
// convention; simsync does not serialize them.
func (c *CounterArray) Add(t *instr.Thread, i int, delta int64) {
	addr := c.base + uint64(i)*c.stride
	t.StoreInt64(addr, t.LoadInt64(addr)+delta)
}

// Load reads counter i.
func (c *CounterArray) Load(t *instr.Thread, i int) int64 {
	return t.LoadInt64(c.base + uint64(i)*c.stride)
}

// SimBarrier is an N-party barrier whose arrival counter and generation
// word live on the simulated heap, so barrier traffic shows up in reports
// exactly as a pthread_barrier_t's memory would. (Heavy true sharing on the
// arrival counter is expected and must classify as TRUE sharing.)
type SimBarrier struct {
	parties int
	addr    uint64 // [count(8) | generation(8)]
	mu      sync.Mutex
	cond    *sync.Cond
}

// NewSimBarrier allocates barrier state for the given number of parties.
func NewSimBarrier(t *instr.Thread, parties int) (*SimBarrier, error) {
	if parties <= 0 {
		return nil, fmt.Errorf("simsync: barrier parties must be positive, got %d", parties)
	}
	addr, err := t.AllocWithOffset(16, 0)
	if err != nil {
		return nil, err
	}
	b := &SimBarrier{parties: parties, addr: addr}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// Wait blocks until all parties arrive, emitting the counter/generation
// accesses a native barrier performs.
func (b *SimBarrier) Wait(t *instr.Thread) {
	b.mu.Lock()
	gen := t.Load64(b.addr + 8)
	arrived := t.Load64(b.addr) + 1
	t.Store64(b.addr, arrived)
	if arrived == uint64(b.parties) {
		t.Store64(b.addr, 0)
		t.Store64(b.addr+8, gen+1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for t.Load64(b.addr+8) == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
