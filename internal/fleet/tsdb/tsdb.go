// Package tsdb is the fleet service's embedded time-series engine: every
// metrics snapshot an agent streams (and every findings run it ships) is
// folded into per-project, per-series ring buffers with staged downsampling
// — raw samples for the last minutes, 1-minute rollups for the last day,
// 1-hour rollups for weeks — so the dashboards and the anomaly engine can
// ask "how has this project trended" without replaying the segment log.
//
// The engine itself is deliberately persistence-free: durability piggybacks
// on the fleet store's append-only JSONL segments. The store feeds the DB
// through its Observer hook both on live appends and during the startup
// salvage scan, so after a crash the rings rebuild to exactly the state the
// acknowledged log implies. Retention is age-based and measured against the
// newest sample each series has seen (not the wall clock), which keeps
// replays deterministic and tests clock-free.
package tsdb

import (
	"sort"
	"sync"
	"time"
)

// Resolutions a query may ask for.
const (
	ResRaw = "raw"
	Res1m  = "1m"
	Res1h  = "1h"
)

// Rollup bucket spans.
const (
	bucket1m = int64(time.Minute / time.Millisecond)
	bucket1h = int64(time.Hour / time.Millisecond)
)

// Config tunes capacity and retention. Zero values take the defaults.
type Config struct {
	// RawCapacity bounds raw samples kept per series (default 2048).
	RawCapacity int
	// RetainRaw drops raw samples older than this relative to the series'
	// newest sample (default 30m).
	RetainRaw time.Duration
	// Retain1m ages out 1-minute rollup buckets (default 24h).
	Retain1m time.Duration
	// Retain1h ages out 1-hour rollup buckets (default 14 days).
	Retain1h time.Duration
}

// Capacity and retention defaults.
const (
	DefaultRawCapacity = 2048
	DefaultRetainRaw   = 30 * time.Minute
	DefaultRetain1m    = 24 * time.Hour
	DefaultRetain1h    = 14 * 24 * time.Hour
)

// Bucket is one aggregated span of a series: raw queries return
// single-sample buckets (Count==1, Min==Max==Sum), rollup queries return
// min/max/sum/count over the bucket span.
type Bucket struct {
	StartMs int64   `json:"t"` // bucket start (raw: the sample's timestamp)
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Sum     float64 `json:"sum"`
	Count   uint64  `json:"count"`
}

// Mean is the bucket average (0 for an empty bucket).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// merge folds one sample into the bucket.
func (b *Bucket) merge(v float64) {
	if b.Count == 0 || v < b.Min {
		b.Min = v
	}
	if b.Count == 0 || v > b.Max {
		b.Max = v
	}
	b.Sum += v
	b.Count++
}

// series is one (project, name) stream: a raw ring plus two rollup tiers.
// Buckets are kept sorted by start; appends are near-in-order (the segment
// log is), so the common path touches only the tail.
type series struct {
	raw      []Bucket // single-sample buckets, ring-bounded by RawCapacity
	m1       []Bucket
	h1       []Bucket
	latestMs int64 // newest sample seen; retention is measured from here
}

// DB is the in-memory time-series database. Safe for concurrent use.
type DB struct {
	cfg Config

	mu       sync.Mutex
	projects map[string]map[string]*series
	appends  uint64
}

// New builds a DB with the given config (zero values defaulted).
func New(cfg Config) *DB {
	if cfg.RawCapacity <= 0 {
		cfg.RawCapacity = DefaultRawCapacity
	}
	if cfg.RetainRaw <= 0 {
		cfg.RetainRaw = DefaultRetainRaw
	}
	if cfg.Retain1m <= 0 {
		cfg.Retain1m = DefaultRetain1m
	}
	if cfg.Retain1h <= 0 {
		cfg.Retain1h = DefaultRetain1h
	}
	return &DB{cfg: cfg, projects: map[string]map[string]*series{}}
}

// Append records one sample. Out-of-order samples within a rollup bucket's
// span still merge correctly; samples older than the retention horizon are
// dropped.
func (db *DB) Append(project, name string, unixMs int64, value float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.projects[project]
	if !ok {
		p = map[string]*series{}
		db.projects[project] = p
	}
	s, ok := p[name]
	if !ok {
		s = &series{}
		p[name] = s
	}
	if unixMs > s.latestMs {
		s.latestMs = unixMs
	}
	if unixMs < s.latestMs-int64(db.cfg.RetainRaw/time.Millisecond) {
		// Older than the raw horizon: still fold into rollups if they can
		// hold it, drop from raw.
		mergeBucket(&s.m1, unixMs-unixMs%bucket1m, value)
		mergeBucket(&s.h1, unixMs-unixMs%bucket1h, value)
	} else {
		s.raw = append(s.raw, Bucket{StartMs: unixMs, Min: value, Max: value, Sum: value, Count: 1})
		if len(s.raw) > 1 && s.raw[len(s.raw)-1].StartMs < s.raw[len(s.raw)-2].StartMs {
			sort.SliceStable(s.raw, func(i, j int) bool { return s.raw[i].StartMs < s.raw[j].StartMs })
		}
		mergeBucket(&s.m1, unixMs-unixMs%bucket1m, value)
		mergeBucket(&s.h1, unixMs-unixMs%bucket1h, value)
	}
	db.appends++
	db.retain(s)
}

// mergeBucket folds a sample into the bucket starting at startMs, creating
// or locating it. The scan runs from the tail: appends arrive near-ordered.
func mergeBucket(buckets *[]Bucket, startMs int64, v float64) {
	bs := *buckets
	for i := len(bs) - 1; i >= 0; i-- {
		if bs[i].StartMs == startMs {
			bs[i].merge(v)
			return
		}
		if bs[i].StartMs < startMs {
			// Insert after i (keeps sort order).
			nb := Bucket{StartMs: startMs}
			nb.merge(v)
			bs = append(bs, Bucket{})
			copy(bs[i+2:], bs[i+1:])
			bs[i+1] = nb
			*buckets = bs
			return
		}
	}
	nb := Bucket{StartMs: startMs}
	nb.merge(v)
	*buckets = append([]Bucket{nb}, bs...)
}

// retain enforces capacity and age bounds on one series. Caller holds db.mu.
func (db *DB) retain(s *series) {
	if n := len(s.raw) - db.cfg.RawCapacity; n > 0 {
		s.raw = append(s.raw[:0:0], s.raw[n:]...)
	}
	s.raw = dropOlder(s.raw, s.latestMs-int64(db.cfg.RetainRaw/time.Millisecond))
	s.m1 = dropOlder(s.m1, s.latestMs-int64(db.cfg.Retain1m/time.Millisecond))
	s.h1 = dropOlder(s.h1, s.latestMs-int64(db.cfg.Retain1h/time.Millisecond))
}

// dropOlder trims sorted buckets strictly older than minMs.
func dropOlder(bs []Bucket, minMs int64) []Bucket {
	i := 0
	for i < len(bs) && bs[i].StartMs < minMs {
		i++
	}
	if i == 0 {
		return bs
	}
	return append(bs[:0:0], bs[i:]...)
}

// Query returns a series' buckets at the requested resolution, oldest first,
// restricted to buckets starting at or after sinceMs (0 = everything
// retained). Unknown project/series/resolution yields nil.
func (db *DB) Query(project, name, res string, sinceMs int64) []Bucket {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.projects[project]
	if !ok {
		return nil
	}
	s, ok := p[name]
	if !ok {
		return nil
	}
	var src []Bucket
	switch res {
	case ResRaw, "":
		src = s.raw
	case Res1m:
		src = s.m1
	case Res1h:
		src = s.h1
	default:
		return nil
	}
	out := make([]Bucket, 0, len(src))
	for _, b := range src {
		if b.StartMs >= sinceMs {
			out = append(out, b)
		}
	}
	return out
}

// Series lists a project's series names, sorted.
func (db *DB) Series(project string) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.projects[project]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(p))
	for name := range p {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Projects lists every project key with at least one series, sorted.
func (db *DB) Projects() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.projects))
	for name := range db.projects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Appends returns how many samples the DB has accepted (rebuild accounting).
func (db *DB) Appends() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.appends
}

// Latest returns the most recent raw sample of a series (ok=false when the
// series is empty or unknown).
func (db *DB) Latest(project, name string) (Bucket, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.projects[project]
	if !ok {
		return Bucket{}, false
	}
	s, ok := p[name]
	if !ok || len(s.raw) == 0 {
		return Bucket{}, false
	}
	return s.raw[len(s.raw)-1], true
}
