package tsdb

import (
	"testing"
	"time"
)

func TestAppendAndQueryRaw(t *testing.T) {
	db := New(Config{})
	base := int64(1_700_000_000_000)
	for i := 0; i < 5; i++ {
		db.Append("p", "inval", base+int64(i)*2000, float64(i))
	}
	got := db.Query("p", "inval", ResRaw, 0)
	if len(got) != 5 {
		t.Fatalf("raw len = %d, want 5", len(got))
	}
	for i, b := range got {
		if b.Count != 1 || b.Sum != float64(i) || b.StartMs != base+int64(i)*2000 {
			t.Fatalf("raw[%d] = %+v", i, b)
		}
	}
	// since filter
	if got := db.Query("p", "inval", ResRaw, base+4000); len(got) != 3 {
		t.Fatalf("since filter len = %d, want 3", len(got))
	}
	// unknown series/project/resolution
	if db.Query("p", "nope", ResRaw, 0) != nil || db.Query("x", "inval", ResRaw, 0) != nil {
		t.Fatal("unknown series/project must be nil")
	}
	if db.Query("p", "inval", "5s", 0) != nil {
		t.Fatal("unknown resolution must be nil")
	}
}

func TestRollupMinMaxSumCount(t *testing.T) {
	db := New(Config{})
	base := int64(1_700_000_000_000)
	base -= base % bucket1m // align to a minute boundary
	// Ten samples inside one minute, values 0..9.
	for i := 0; i < 10; i++ {
		db.Append("p", "s", base+int64(i)*1000, float64(i))
	}
	// One sample in the next minute.
	db.Append("p", "s", base+bucket1m+500, 100)

	m1 := db.Query("p", "s", Res1m, 0)
	if len(m1) != 2 {
		t.Fatalf("1m buckets = %d, want 2: %+v", len(m1), m1)
	}
	b := m1[0]
	if b.Min != 0 || b.Max != 9 || b.Sum != 45 || b.Count != 10 {
		t.Fatalf("first 1m bucket = %+v", b)
	}
	if b.Mean() != 4.5 {
		t.Fatalf("Mean = %v, want 4.5", b.Mean())
	}
	if m1[1].Count != 1 || m1[1].Sum != 100 {
		t.Fatalf("second 1m bucket = %+v", m1[1])
	}
	// The hour tier folded everything into one bucket (same hour).
	h1 := db.Query("p", "s", Res1h, 0)
	if len(h1) != 1 || h1[0].Count != 11 || h1[0].Max != 100 {
		t.Fatalf("1h buckets = %+v", h1)
	}
}

func TestOutOfOrderMergesIntoExistingBucket(t *testing.T) {
	db := New(Config{})
	base := int64(1_700_000_000_000)
	base -= base % bucket1m
	db.Append("p", "s", base+1000, 1)
	db.Append("p", "s", base+59_000, 3)
	db.Append("p", "s", base+30_000, 2) // late arrival, same minute
	m1 := db.Query("p", "s", Res1m, 0)
	if len(m1) != 1 || m1[0].Count != 3 || m1[0].Sum != 6 {
		t.Fatalf("out-of-order 1m = %+v", m1)
	}
	raw := db.Query("p", "s", ResRaw, 0)
	if len(raw) != 3 || raw[1].StartMs != base+30_000 {
		t.Fatalf("raw must be re-sorted: %+v", raw)
	}
}

func TestRawCapacityRing(t *testing.T) {
	db := New(Config{RawCapacity: 4, RetainRaw: time.Hour})
	base := int64(1_700_000_000_000)
	for i := 0; i < 10; i++ {
		db.Append("p", "s", base+int64(i)*1000, float64(i))
	}
	raw := db.Query("p", "s", ResRaw, 0)
	if len(raw) != 4 {
		t.Fatalf("ring len = %d, want 4", len(raw))
	}
	if raw[0].Sum != 6 || raw[3].Sum != 9 {
		t.Fatalf("ring kept wrong samples: %+v", raw)
	}
	// The rollups still saw every sample.
	if m1 := db.Query("p", "s", Res1m, 0); m1[0].Count+func() uint64 {
		if len(m1) > 1 {
			return m1[1].Count
		}
		return 0
	}() != 10 {
		t.Fatalf("rollup lost ring-evicted samples: %+v", m1)
	}
}

func TestAgeRetentionRelativeToNewestSample(t *testing.T) {
	db := New(Config{RetainRaw: time.Minute, Retain1m: 10 * time.Minute, Retain1h: 2 * time.Hour})
	base := int64(1_700_000_000_000)
	db.Append("p", "s", base, 1)
	db.Append("p", "s", base+30_000, 2)
	// A sample far in the future ages the first two out of the raw tier.
	db.Append("p", "s", base+5*int64(time.Minute/time.Millisecond), 3)
	raw := db.Query("p", "s", ResRaw, 0)
	if len(raw) != 1 || raw[0].Sum != 3 {
		t.Fatalf("raw after aging = %+v", raw)
	}
	// 1m buckets survive (10m retention) — three distinct minutes.
	if m1 := db.Query("p", "s", Res1m, 0); len(m1) < 2 {
		t.Fatalf("1m rollups aged too aggressively: %+v", m1)
	}
	// A sample newer than the 1m horizon ages those out too.
	db.Append("p", "s", base+int64(time.Hour/time.Millisecond), 4)
	if m1 := db.Query("p", "s", Res1m, 0); len(m1) != 1 {
		t.Fatalf("1m rollups not aged: %+v", m1)
	}
	// The 1h tier still holds both hours.
	if h1 := db.Query("p", "s", Res1h, 0); len(h1) != 2 {
		t.Fatalf("1h rollups = %+v", h1)
	}
}

func TestSeriesAndProjectListings(t *testing.T) {
	db := New(Config{})
	db.Append("b", "y", 1000, 1)
	db.Append("a", "z", 1000, 1)
	db.Append("a", "x", 1000, 1)
	if got := db.Projects(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Projects = %v", got)
	}
	if got := db.Series("a"); len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Fatalf("Series = %v", got)
	}
	if db.Series("missing") != nil {
		t.Fatal("missing project series must be nil")
	}
	if db.Appends() != 3 {
		t.Fatalf("Appends = %d", db.Appends())
	}
	if b, ok := db.Latest("a", "x"); !ok || b.Sum != 1 {
		t.Fatalf("Latest = %+v ok=%v", b, ok)
	}
	if _, ok := db.Latest("a", "missing"); ok {
		t.Fatal("Latest on missing series must not be ok")
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	db := New(Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			db.Append("p", "s", int64(1_700_000_000_000+i*100), float64(i))
		}
	}()
	for i := 0; i < 100; i++ {
		db.Query("p", "s", Res1m, 0)
		db.Latest("p", "s")
	}
	<-done
	if got := db.Appends(); got != 1000 {
		t.Fatalf("Appends = %d", got)
	}
}
