package fleet

import (
	"testing"
	"time"
)

func TestRateLimiterBurstAndRefill(t *testing.T) {
	clock := newFakeClock()
	rl := NewRateLimiter(1.0, 3, clock.Now)

	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow("acme"); !ok {
			t.Fatalf("request %d inside burst denied", i+1)
		}
	}
	ok, retry := rl.Allow("acme")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	if rl.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", rl.Denied())
	}

	// Tenants have separate buckets: someone else's burst is untouched.
	if ok, _ := rl.Allow("rival"); !ok {
		t.Fatal("other tenant denied by acme's exhausted bucket")
	}

	// One token refills after one second at rate 1/s.
	clock.Advance(time.Second)
	if ok, _ := rl.Allow("acme"); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := rl.Allow("acme"); ok {
		t.Fatal("second request after a single-token refill allowed")
	}

	// A long idle period refills only to the burst cap.
	clock.Advance(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := rl.Allow("acme"); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("allowed %d after long idle, want burst cap 3", allowed)
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	rl := NewRateLimiter(0, 0, nil)
	if rl.rate != DefaultRate || rl.burst != float64(DefaultBurst) {
		t.Fatalf("defaults = rate %v burst %v", rl.rate, rl.burst)
	}
}
