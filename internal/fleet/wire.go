// Package fleet is the server side of PREDATOR's fleet mode: many detector
// agents (predator, predbench, predreplay) stream findings, metric
// snapshots, and trace segments to one central predfleet service, which
// persists them in an append-only store, indexes them per tenant and
// project, and answers fleet-wide queries — run history, regression diffs
// between runs, and an aggregated hottest-lines view.
//
// This file defines the wire schema shared by the server and the agent-side
// exporter (internal/obs/fleetclient): the ingestion payloads agents POST
// and the on-disk envelope the store appends. Everything is plain JSON so
// segments stay greppable and the salvage reader can resync on line
// boundaries after a crash or disk fault.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"

	"predator/internal/eval"
	"predator/internal/obs/spans"
	"predator/internal/report"
)

// Record types carried in store envelopes and ingestion URLs.
const (
	TypeFindings = "findings"
	TypeMetrics  = "metrics"
	TypeTrace    = "trace"
	TypeSpans    = "spans"
)

// EnvelopeVersion is the current on-disk envelope schema version.
const EnvelopeVersion = 1

// Envelope frames one store record: who sent what, for which project and
// run, plus a CRC over the payload bytes so recovery can reject records a
// disk fault silently mangled. One envelope is one JSONL line.
type Envelope struct {
	V       int    `json:"v"`
	Type    string `json:"type"`
	Tenant  string `json:"tenant"`
	Project string `json:"project"`
	Agent   string `json:"agent,omitempty"`
	Run     string `json:"run,omitempty"`
	Seq     uint64 `json:"seq"`
	UnixMs  int64  `json:"unix_ms"`
	// CRC is the IEEE CRC-32 of the raw Payload bytes, rendered as %08x.
	CRC     string          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// PayloadCRC computes the envelope checksum over raw payload bytes.
func PayloadCRC(payload []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))
}

// RunMeta identifies one detection run as reported by the agent.
type RunMeta struct {
	ID         string `json:"id"`
	Project    string `json:"project"`
	Agent      string `json:"agent,omitempty"`
	Tool       string `json:"tool,omitempty"`    // predator | predbench | predreplay
	Version    string `json:"version,omitempty"` // agent build version
	Workload   string `json:"workload,omitempty"`
	Mode       string `json:"mode,omitempty"`
	Threads    int    `json:"threads,omitempty"`
	UnixMs     int64  `json:"unix_ms,omitempty"` // agent-side completion time
	DurationNs int64  `json:"duration_ns,omitempty"`
}

// FindingsPayload is the body of POST /api/v1/ingest/findings: one run's
// reports, keyed by workload (a single-workload agent uses one key), plus
// the machine-readable benchmark document when the agent produced one —
// that is what powers slowdown-ratio deltas in /api/v1/diff.
type FindingsPayload struct {
	Run     RunMeta                      `json:"run"`
	Reports map[string]report.JSONReport `json:"reports"`
	Bench   *eval.BenchDoc               `json:"bench,omitempty"`
}

// MetricsPayload is the body of POST /api/v1/ingest/metrics: a point-in-time
// snapshot of one agent's registry and hottest lines. The server keeps the
// latest payload per (project, agent) and aggregates them in /api/v1/hotlines.
type MetricsPayload struct {
	Project  string             `json:"project"`
	Agent    string             `json:"agent"`
	Tool     string             `json:"tool,omitempty"`
	Run      string             `json:"run,omitempty"`
	UnixMs   int64              `json:"unix_ms"`
	Snapshot map[string]float64 `json:"snapshot,omitempty"` // obs.Registry.Snapshot()
	Stats    StatsSnapshot      `json:"stats"`
	HotLines []HotLine          `json:"hotlines,omitempty"`
}

// StatsSnapshot mirrors the runtime counters agents report (the same
// snake_case shape diag.StatsJSON serves), kept separate so the wire format
// does not chase internal struct changes.
type StatsSnapshot struct {
	Accesses      uint64 `json:"accesses"`
	Writes        uint64 `json:"writes"`
	TrackedLines  int    `json:"tracked_lines"`
	VirtualLines  int    `json:"virtual_lines"`
	Invalidations uint64 `json:"invalidations"`
	DegradedLines int    `json:"degraded_lines,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	// Elided counts accesses the static elision fast path dropped (zero
	// without an -elide manifest), so fleet dashboards can attribute how
	// much instrumentation the proofs saved.
	Elided uint64 `json:"elided,omitempty"`
}

// HotLine is one tracked line in a metrics payload: the subset of
// core.LineSnapshot the fleet view renders, plus origin tags filled in by
// the server when aggregating across agents.
type HotLine struct {
	Line          uint64 `json:"line"`
	Addr          uint64 `json:"addr"`
	Accesses      uint64 `json:"accesses"`
	Reads         uint64 `json:"reads"`
	Writes        uint64 `json:"writes"`
	Invalidations uint64 `json:"invalidations"`
	ReportWorthy  bool   `json:"report_worthy,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	// Owners is the one-glyph-per-word ownership heatmap as rendered by
	// topview.Heatmap — agents compress it so the wire stays small.
	Owners string `json:"owners,omitempty"`

	// Origin tags, set by the server on aggregated responses. Trace is the
	// span trace ID of the originating agent's current run, when that run
	// shipped a span snapshot — predtop's jump-to-waterfall handle.
	Project string `json:"project,omitempty"`
	Agent   string `json:"agent,omitempty"`
	Trace   string `json:"trace,omitempty"`
}

// TraceMeta is the accounting the server keeps for an ingested trace
// segment (the raw bytes live in the store payload, base64-framed by
// encoding/json).
type TraceMeta struct {
	Project string `json:"project"`
	Run     string `json:"run,omitempty"`
	Agent   string `json:"agent,omitempty"`
	Bytes   int64  `json:"bytes"`
	// Events/CorruptRegions come from running the trace salvage reader over
	// the uploaded bytes at ingestion time: the segment is untrusted input.
	Events         uint64 `json:"events"`
	CorruptRegions uint64 `json:"corrupt_regions,omitempty"`
	TruncatedTail  bool   `json:"truncated_tail,omitempty"`
}

// TracePayload is the stored form of an uploaded trace segment.
type TracePayload struct {
	Meta TraceMeta `json:"meta"`
	Data []byte    `json:"data"`
}

// SpansPayload is the body of POST /api/v1/ingest/spans: one run's finished
// span snapshot, shipped once at run end. The server keeps the latest
// payload per (project, run) and serves it from /api/v1/traces and the
// dashboard waterfall; a finding's provenance span_id indexes into Spans.
type SpansPayload struct {
	Project string       `json:"project"`
	Agent   string       `json:"agent,omitempty"`
	Tool    string       `json:"tool,omitempty"`
	Run     string       `json:"run"`
	UnixMs  int64        `json:"unix_ms"`
	TraceID string       `json:"trace_id"`
	Spans   []spans.Data `json:"spans"`
}

// Validate rejects payloads that cannot be indexed or would poison the
// waterfall view: a missing run, a malformed trace ID, or spans from a
// different trace.
func (p *SpansPayload) Validate() error {
	if p.Run == "" {
		return fmt.Errorf("fleet: spans payload missing run")
	}
	if _, err := spans.ParseTraceID(p.TraceID); err != nil {
		return err
	}
	for i := range p.Spans {
		if p.Spans[i].TraceID != p.TraceID {
			return fmt.Errorf("fleet: span %d belongs to trace %s, payload says %s",
				i, p.Spans[i].TraceID, p.TraceID)
		}
		if _, err := spans.ParseSpanID(p.Spans[i].SpanID); err != nil {
			return err
		}
	}
	return nil
}

// CountsOf tallies a machine-readable report the way report.Report.Counts
// does, from the wire-side JSON mirror (the server never holds the rich
// in-memory Report).
func CountsOf(rep *report.JSONReport) report.Counts {
	c := report.Counts{Findings: len(rep.Findings)}
	for _, f := range rep.Findings {
		if strings.Contains(f.Sharing, "false") || strings.Contains(f.Sharing, "mixed") {
			c.FalseSharing++
		}
		if f.Source == "observed" {
			c.Observed++
		} else {
			c.Predicted++
		}
	}
	return c
}

// SumCounts totals counts across a run's per-workload reports.
func SumCounts(reports map[string]report.JSONReport) report.Counts {
	var c report.Counts
	for k := range reports {
		rep := reports[k]
		rc := CountsOf(&rep)
		c.Findings += rc.Findings
		c.FalseSharing += rc.FalseSharing
		c.Observed += rc.Observed
		c.Predicted += rc.Predicted
	}
	return c
}

// FindingKey is the identity under which two runs' findings are matched by
// the regression diff: the workload, the finding's primary object (label
// preferred, span as fallback), and its source. Two runs reporting the same
// object from the same source are "the same finding" even if counts moved.
func FindingKey(workload string, f *report.JSONFinding) string {
	obj := fmt.Sprintf("span:%#x-%#x", f.SpanStart, f.SpanEnd)
	if f.Object != nil && f.Object.Label != "" {
		obj = "obj:" + f.Object.Label
		if f.Object.Callsite != "" {
			obj += "@" + f.Object.Callsite
		}
	}
	return workload + "|" + obj + "|" + f.Source
}
