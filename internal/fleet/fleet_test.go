package fleet

import (
	"sync"
	"time"

	"predator/internal/eval"
	"predator/internal/report"
)

// fakeClock is an injectable manual clock for limiter and store tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// finding builds one labeled test finding.
func finding(label, sharing, source string, inval uint64) report.JSONFinding {
	return report.JSONFinding{
		Source:        source,
		Sharing:       sharing,
		SpanStart:     0x1000,
		SpanEnd:       0x1040,
		Accesses:      inval * 4,
		Writes:        inval * 2,
		Invalidations: inval,
		Object:        &report.JSONObj{Start: 0x1000, Size: 64, Label: label, Callsite: "main.go:42"},
	}
}

// mkReport wraps findings into a wire report.
func mkReport(findings ...report.JSONFinding) report.JSONReport {
	return report.JSONReport{LineSize: 64, Findings: findings}
}

// mkRun builds a findings payload for one run of one workload.
func mkRun(id, project, workload string, findings ...report.JSONFinding) *FindingsPayload {
	return &FindingsPayload{
		Run:     RunMeta{ID: id, Project: project, Agent: "agent-1", Tool: "predator", Workload: workload},
		Reports: map[string]report.JSONReport{workload: mkReport(findings...)},
	}
}

// benchDocFor builds a two-mode bench document whose PREDATOR slowdown ratio
// is predNs/origNs.
func benchDocFor(workload string, origNs, predNs int64, findings int) *eval.BenchDoc {
	return &eval.BenchDoc{
		Tool: "predbench", Threads: 8, Scale: 1, Repeats: 3,
		Records: []eval.BenchRecord{
			{Experiment: "bench", Workload: workload, Mode: "Original", MedianNs: origNs, MinNs: origNs},
			{Experiment: "bench", Workload: workload, Mode: "PREDATOR", MedianNs: predNs, MinNs: predNs,
				Findings: findings, FalseSharing: findings},
		},
	}
}
