package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer stands up a store-backed server on httptest, token "s3cret"
// mapping to tenant "acme".
func newTestServer(t *testing.T, mutate func(*ServerConfig)) (*Server, *httptest.Server) {
	t.Helper()
	store, err := OpenStore(StoreConfig{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	cfg := ServerConfig{
		Store:  store,
		Tokens: map[string]string{"s3cret": "acme", "r1val": "rival"},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		store.Close()
	})
	return srv, ts
}

// do performs one request and returns status and body.
func do(t *testing.T, method, url, token string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header
}

// postRun ingests one findings payload and asserts the expected status.
func postRun(t *testing.T, base, token string, fp *FindingsPayload, wantStatus int) ingestAck {
	t.Helper()
	body, err := json.Marshal(fp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	code, data, _ := do(t, http.MethodPost, base+"/api/v1/ingest/findings", token, body)
	if code != wantStatus {
		t.Fatalf("ingest findings = %d (%s), want %d", code, data, wantStatus)
	}
	var ack ingestAck
	if wantStatus < 300 {
		if err := json.Unmarshal(data, &ack); err != nil {
			t.Fatalf("ack decode: %v (%s)", err, data)
		}
	}
	return ack
}

func TestServerAuth(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Query and ingestion surfaces demand a token...
	for _, path := range []string{"/api/v1/projects", "/api/v1/runs?project=db"} {
		if code, _, _ := do(t, http.MethodGet, ts.URL+path, "", nil); code != http.StatusUnauthorized {
			t.Fatalf("GET %s unauthenticated = %d, want 401", path, code)
		}
		if code, _, _ := do(t, http.MethodGet, ts.URL+path, "wrong", nil); code != http.StatusUnauthorized {
			t.Fatalf("GET %s bad token = %d, want 401", path, code)
		}
	}
	if code, _, _ := do(t, http.MethodPost, ts.URL+"/api/v1/ingest/findings", "", []byte("{}")); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated ingest = %d, want 401", code)
	}

	// ...while health and metrics stay open for probes and scrapers.
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	code, body, _ := do(t, http.MethodGet, ts.URL+"/metrics", "", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "predfleet_ingest_total") {
		t.Fatalf("/metrics = %d, predfleet_ingest_total present=%v",
			code, strings.Contains(string(body), "predfleet_ingest_total"))
	}

	// The X-Predfleet-Token header authenticates too (curl-friendly).
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/projects", nil)
	req.Header.Set("X-Predfleet-Token", "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("header-token request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-Predfleet-Token auth = %d, want 200", resp.StatusCode)
	}
}

func TestServerIngestQueryDiff(t *testing.T) {
	_, ts := newTestServer(t, nil)

	ack := postRun(t, ts.URL, "s3cret", mkRun("base", "db", "mysql",
		finding("gone", "false sharing", "observed", 300),
		finding("stays", "false sharing", "observed", 100)), http.StatusCreated)
	if ack.Status != "ok" || ack.Run != "base" {
		t.Fatalf("ack = %+v", ack)
	}
	postRun(t, ts.URL, "s3cret", mkRun("head", "db", "mysql",
		finding("stays", "false sharing", "observed", 120),
		finding("fresh", "false sharing", "observed", 900)), http.StatusCreated)

	// Replayed run ID: idempotent 200 with the duplicate flag.
	dup := postRun(t, ts.URL, "s3cret", mkRun("base", "db", "mysql"), http.StatusOK)
	if dup.Status != "duplicate" || !dup.Duplicate {
		t.Fatalf("duplicate ack = %+v", dup)
	}

	// Run history, newest first.
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/runs?project=db", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("/runs = %d (%s)", code, body)
	}
	var runs RunsResponse
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("runs decode: %v", err)
	}
	if runs.Count != 2 || runs.Runs[0].ID != "head" || runs.Runs[1].Duplicates != 1 {
		t.Fatalf("runs = %+v", runs)
	}

	// The regression diff between the two runs.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/diff?project=db&base=base&head=head", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("/diff = %d (%s)", code, body)
	}
	var delta RunDelta
	if err := json.Unmarshal(body, &delta); err != nil {
		t.Fatalf("diff decode: %v", err)
	}
	if len(delta.New) != 1 || delta.New[0].Label != "fresh" ||
		len(delta.Resolved) != 1 || delta.Resolved[0].Label != "gone" || !delta.Regressed {
		t.Fatalf("delta = %+v", delta)
	}

	// Unknown runs 404; missing params 400.
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/diff?project=db&base=base&head=nope", "s3cret", nil); code != http.StatusNotFound {
		t.Fatalf("diff unknown head = %d, want 404", code)
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/diff?project=db", "s3cret", nil); code != http.StatusBadRequest {
		t.Fatalf("diff missing params = %d, want 400", code)
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/runs", "s3cret", nil); code != http.StatusBadRequest {
		t.Fatalf("runs missing project = %d, want 400", code)
	}

	// Findings flatten across runs; tenancy hides them from other tenants.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/findings?project=db", "s3cret", nil)
	var fs FindingsResponse
	if code != http.StatusOK || json.Unmarshal(body, &fs) != nil || fs.Count != 4 {
		t.Fatalf("/findings = %d count=%d (%s)", code, fs.Count, body)
	}
	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/findings?project=db", "r1val", nil)
	var empty FindingsResponse
	if code != http.StatusOK || json.Unmarshal(body, &empty) != nil || empty.Count != 0 {
		t.Fatalf("cross-tenant findings = %d count=%d", code, empty.Count)
	}
}

func TestServerHostileBodies(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *ServerConfig) { cfg.MaxBody = 1024 })
	ingest := ts.URL + "/api/v1/ingest/findings"

	// Truncated JSON.
	if code, _, _ := do(t, http.MethodPost, ingest, "s3cret", []byte(`{"run":{"id":"x"`)); code != http.StatusBadRequest {
		t.Fatalf("truncated body = %d, want 400", code)
	}
	// Binary garbage.
	if code, _, _ := do(t, http.MethodPost, ingest, "s3cret", []byte{0xff, 0xfe, 0x00, 0x01}); code != http.StatusBadRequest {
		t.Fatalf("binary body = %d, want 400", code)
	}
	// Valid JSON followed by trailing garbage must not half-parse.
	valid, _ := json.Marshal(mkRun("r1", "db", "mysql"))
	if code, _, _ := do(t, http.MethodPost, ingest, "s3cret", append(valid, []byte("{}")...)); code != http.StatusBadRequest {
		t.Fatalf("trailing garbage = %d, want 400", code)
	}
	// Well-formed but unidentified payload.
	if code, _, _ := do(t, http.MethodPost, ingest, "s3cret", []byte(`{"reports":{}}`)); code != http.StatusBadRequest {
		t.Fatalf("missing run identity = %d, want 400", code)
	}
	// Oversized payload: 413, not a truncated parse.
	big := fmt.Sprintf(`{"run":{"id":"big","project":"db"},"reports":{},"pad":%q}`, strings.Repeat("x", 2048))
	if code, _, _ := do(t, http.MethodPost, ingest, "s3cret", []byte(big)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", code)
	}
	// Wrong method.
	if code, _, _ := do(t, http.MethodGet, ingest, "s3cret", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest = %d, want 405", code)
	}
	// Nothing hostile made it into the store.
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/projects", "s3cret", nil)
	var pr ProjectsResponse
	if code != http.StatusOK || json.Unmarshal(body, &pr) != nil || pr.Count != 0 {
		t.Fatalf("projects after hostile bodies = %d count=%d", code, pr.Count)
	}
}

func TestServerRateLimit(t *testing.T) {
	clock := newFakeClock()
	_, ts := newTestServer(t, func(cfg *ServerConfig) {
		cfg.Rate, cfg.Burst, cfg.Clock = 1.0, 2, clock.Now
	})

	postRun(t, ts.URL, "s3cret", mkRun("r1", "db", "mysql"), http.StatusCreated)
	postRun(t, ts.URL, "s3cret", mkRun("r2", "db", "mysql"), http.StatusCreated)

	body, _ := json.Marshal(mkRun("r3", "db", "mysql"))
	code, _, hdr := do(t, http.MethodPost, ts.URL+"/api/v1/ingest/findings", "s3cret", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst overflow = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}

	// The other tenant's ingestion proceeds while acme is shed.
	postRun(t, ts.URL, "r1val", mkRun("r1", "other", "mysql"), http.StatusCreated)

	// After the refill interval acme flows again — and r3 was never acked,
	// so the client retry ingests it fresh.
	clock.Advance(2 * time.Second)
	postRun(t, ts.URL, "s3cret", mkRun("r3", "db", "mysql"), http.StatusCreated)
}

func TestServerHotLinesAggregation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	post := func(mp *MetricsPayload) {
		t.Helper()
		body, _ := json.Marshal(mp)
		code, data, _ := do(t, http.MethodPost, ts.URL+"/api/v1/ingest/metrics", "s3cret", body)
		if code != http.StatusOK {
			t.Fatalf("ingest metrics = %d (%s)", code, data)
		}
	}
	post(&MetricsPayload{
		Project: "db", Agent: "agent-1", UnixMs: 1,
		Stats:    StatsSnapshot{Accesses: 100, Invalidations: 70},
		HotLines: []HotLine{{Line: 1, Addr: 0x40, Invalidations: 70, Owners: "01.."}},
	})
	post(&MetricsPayload{
		Project: "web", Agent: "agent-2", UnixMs: 2,
		Stats: StatsSnapshot{Accesses: 50, Invalidations: 220, Degraded: true},
		HotLines: []HotLine{
			{Line: 2, Addr: 0x80, Invalidations: 200, Owners: "SS.."},
			{Line: 3, Addr: 0xc0, Invalidations: 20},
		},
	})

	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/hotlines?n=2", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("/hotlines = %d (%s)", code, body)
	}
	var hl HotLinesResponse
	if err := json.Unmarshal(body, &hl); err != nil {
		t.Fatalf("hotlines decode: %v", err)
	}
	if hl.Tool != "predfleet" || hl.Agents != 2 || hl.Count != 2 {
		t.Fatalf("hotlines header = %+v", hl)
	}
	// Stats sum across agents; lines sort hottest-first with origin tags.
	if hl.Stats.Accesses != 150 || hl.Stats.Invalidations != 290 || !hl.Stats.Degraded {
		t.Fatalf("aggregated stats = %+v", hl.Stats)
	}
	if hl.Lines[0].Addr != 0x80 || hl.Lines[0].Agent != "agent-2" || hl.Lines[0].Project != "web" {
		t.Fatalf("lines[0] = %+v", hl.Lines[0])
	}
	if hl.Lines[1].Addr != 0x40 || hl.Lines[1].Agent != "agent-1" {
		t.Fatalf("lines[1] = %+v", hl.Lines[1])
	}

	// ?project= narrows the aggregation.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/hotlines?project=db", "s3cret", nil)
	if err := json.Unmarshal(body, &hl); code != http.StatusOK || err != nil {
		t.Fatalf("/hotlines?project=db = %d, %v", code, err)
	}
	if hl.Agents != 1 || hl.Count != 1 || hl.Lines[0].Project != "db" {
		t.Fatalf("project-scoped hotlines = %+v", hl)
	}
}

func TestServerTraceIngest(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Garbage bytes are accepted (the agent's trace may be damaged — that is
	// exactly what the salvage accounting is for), with zero decodable events.
	code, body, _ := do(t, http.MethodPost,
		ts.URL+"/api/v1/ingest/trace?project=db&run=r1&agent=a1", "s3cret",
		[]byte("not a trace segment at all"))
	if code != http.StatusOK {
		t.Fatalf("trace ingest = %d (%s)", code, body)
	}
	var ack ingestAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Events != 0 {
		t.Fatalf("trace ack = %+v, %v", ack, err)
	}
	if code, _, _ := do(t, http.MethodPost, ts.URL+"/api/v1/ingest/trace", "s3cret", []byte("x")); code != http.StatusBadRequest {
		t.Fatalf("trace without project = %d, want 400", code)
	}

	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/projects", "s3cret", nil)
	var pr ProjectsResponse
	if code != http.StatusOK || json.Unmarshal(body, &pr) != nil ||
		pr.Count != 1 || pr.Projects[0].Traces != 1 {
		t.Fatalf("projects after trace = %d %+v", code, pr)
	}
}

func TestServerHealth(t *testing.T) {
	_, ts := newTestServer(t, nil)
	postRun(t, ts.URL, "s3cret", mkRun("r1", "db", "mysql"), http.StatusCreated)
	code, body, _ := do(t, http.MethodGet, ts.URL+"/healthz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health decode: %v", err)
	}
	if h.Status != "ok" || h.Tool != "predfleet" || h.Appends != 1 {
		t.Fatalf("health = %+v", h)
	}
}
