package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"predator/internal/obs/spans"
)

// mkSpans builds a valid spans payload by running a real deterministic
// tracer: a cli.run root with a harness.workload child carrying attribution
// counters, exactly what an agent ships.
func mkSpans(t *testing.T, project, run string) *SpansPayload {
	t.Helper()
	tr := spans.New(spans.Config{Deterministic: true})
	root := tr.Start("cli.run", nil)
	root.SetLabel("tool", "predator")
	work := tr.Start("harness.workload", root)
	work.SetAttr("predator.accesses_dispatched", 1000)
	work.SetAttr("predator.invalidations", 42)
	work.End()
	root.End()
	return &SpansPayload{
		Project: project,
		Agent:   "a1",
		Tool:    "predator",
		Run:     run,
		TraceID: tr.TraceID().String(),
		Spans:   tr.Snapshot(),
	}
}

func postSpans(t *testing.T, base string, sp *SpansPayload, wantStatus int) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	code, data, _ := do(t, http.MethodPost, base+"/api/v1/ingest/spans", "s3cret", body)
	if code != wantStatus {
		t.Fatalf("ingest spans = %d (%s), want %d", code, data, wantStatus)
	}
}

func TestStoreSpansRoundtripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(StoreConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	sp := mkSpans(t, "db", "r1")
	if err := store.AppendSpans("acme", sp); err != nil {
		t.Fatalf("AppendSpans: %v", err)
	}

	check := func(s *Store, stage string) {
		t.Helper()
		traces := s.Traces("acme", "db", 10)
		if len(traces) != 1 {
			t.Fatalf("%s: Traces = %v (want 1)", stage, traces)
		}
		ti := traces[0]
		if ti.TraceID != sp.TraceID || ti.Run != "r1" || ti.Root != "cli.run" || ti.Spans != 2 {
			t.Fatalf("%s: trace summary = %+v", stage, ti)
		}
		// Resolve by trace ID and by run ID — a finding's run handle must
		// lead to the same waterfall.
		for _, id := range []string{sp.TraceID, "r1"} {
			got, err := s.TraceSpans("acme", "db", id)
			if err != nil {
				t.Fatalf("%s: TraceSpans(%q): %v", stage, id, err)
			}
			if len(got.Spans) != 2 || got.TraceID != sp.TraceID {
				t.Fatalf("%s: TraceSpans(%q) = %+v", stage, id, got)
			}
		}
		if _, err := s.TraceSpans("acme", "db", "nope"); err != ErrUnknownTrace {
			t.Fatalf("%s: unknown trace err = %v", stage, err)
		}
		if id := s.TraceIDForRun("acme", "db", "r1"); id != sp.TraceID {
			t.Fatalf("%s: TraceIDForRun = %q", stage, id)
		}
	}
	check(store, "live")

	// Spans survive the store's crash-recovery scan.
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	store2, err := OpenStore(StoreConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	check(store2, "recovered")
}

func TestStoreSpansLastWriteWinsPerRun(t *testing.T) {
	store, err := OpenStore(StoreConfig{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer store.Close()

	first := mkSpans(t, "db", "r1")
	if err := store.AppendSpans("acme", first); err != nil {
		t.Fatalf("AppendSpans: %v", err)
	}
	// An agent retry re-ships the same run with a fresh (longer) snapshot:
	// the new doc replaces the old one instead of duplicating the trace list.
	second := mkSpans(t, "db", "r1")
	tr := spans.New(spans.Config{Deterministic: true, Seed: 7})
	root := tr.Start("cli.run", nil)
	tr.Start("harness.setup", root).End()
	tr.Start("harness.workload", root).End()
	root.End()
	second.TraceID = tr.TraceID().String()
	second.Spans = tr.Snapshot()
	if err := store.AppendSpans("acme", second); err != nil {
		t.Fatalf("AppendSpans retry: %v", err)
	}

	traces := store.Traces("acme", "db", 10)
	if len(traces) != 1 {
		t.Fatalf("Traces after retry = %v (want 1)", traces)
	}
	if traces[0].Spans != 3 || traces[0].TraceID != second.TraceID {
		t.Fatalf("retry did not replace: %+v", traces[0])
	}
	// The superseded trace ID no longer resolves; the new one does.
	if _, err := store.TraceSpans("acme", "db", first.TraceID); err != ErrUnknownTrace {
		t.Fatalf("stale trace ID still resolves: %v", err)
	}
	if got, err := store.TraceSpans("acme", "db", "r1"); err != nil || len(got.Spans) != 3 {
		t.Fatalf("run handle after retry = %+v, %v", got, err)
	}
}

func TestServerSpansIngestAndTracesQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)

	sp := mkSpans(t, "db", "r1")
	postSpans(t, ts.URL, sp, http.StatusOK)

	// Malformed payloads bounce with 400: wrong trace ID format...
	bad := mkSpans(t, "db", "r2")
	bad.TraceID = "zz"
	postSpans(t, ts.URL, bad, http.StatusBadRequest)
	// ...and spans from a different trace than the envelope claims.
	bad2 := mkSpans(t, "db", "r3")
	bad2.TraceID = strings.Repeat("ab", 16)
	postSpans(t, ts.URL, bad2, http.StatusBadRequest)

	// List view.
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/traces?project=db", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("traces list = %d (%s)", code, body)
	}
	var list TracesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if list.Count != 1 || len(list.Traces) != 1 || list.Traces[0].TraceID != sp.TraceID {
		t.Fatalf("list = %+v", list)
	}

	// Detail view by trace ID and by run ID.
	for _, id := range []string{sp.TraceID, "r1"} {
		code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/traces?project=db&id="+id, "s3cret", nil)
		if code != http.StatusOK {
			t.Fatalf("trace detail(%s) = %d (%s)", id, code, body)
		}
		var det TracesResponse
		if err := json.Unmarshal(body, &det); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if det.Trace == nil || len(det.Trace.Spans) != 2 || det.Trace.TraceID != sp.TraceID {
			t.Fatalf("detail(%s) = %+v", id, det)
		}
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/traces?project=db&id=nope", "s3cret", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}

	// Tenant isolation: the rival token sees nothing.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/traces?project=db", "r1val", nil)
	if code != http.StatusOK {
		t.Fatalf("rival traces = %d (%s)", code, body)
	}
	var rival TracesResponse
	if err := json.Unmarshal(body, &rival); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rival.Count != 0 {
		t.Fatalf("tenant leak: %+v", rival)
	}
}

func TestServerHotLinesCarryTraceAndElided(t *testing.T) {
	_, ts := newTestServer(t, nil)

	sp := mkSpans(t, "db", "r1")
	postSpans(t, ts.URL, sp, http.StatusOK)
	postMetrics(t, ts.URL, &MetricsPayload{Project: "db", Agent: "a1", Run: "r1",
		Stats:    StatsSnapshot{Invalidations: 50, Elided: 7},
		HotLines: []HotLine{{Addr: 0x1000, Invalidations: 50}}})

	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/hotlines?project=db", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("hotlines = %d (%s)", code, body)
	}
	var hl HotLinesResponse
	if err := json.Unmarshal(body, &hl); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(hl.Lines) != 1 || hl.Lines[0].Trace != sp.TraceID {
		t.Fatalf("hot line not tagged with its run's trace: %+v", hl.Lines)
	}
	if hl.Stats.Elided != 7 {
		t.Fatalf("aggregated elided = %d, want 7", hl.Stats.Elided)
	}
}

func TestDashTraceWaterfall(t *testing.T) {
	_, ts := newTestServer(t, nil)

	postRun(t, ts.URL, "s3cret", mkRun("r1", "db", "mysql",
		finding("counter", "false sharing", "observed", 100)), http.StatusCreated)
	sp := mkSpans(t, "db", "r1")
	postSpans(t, ts.URL, sp, http.StatusOK)

	// The project page links the trace.
	code, body, _ := do(t, http.MethodGet, ts.URL+"/dash/db?token=s3cret", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/dash/db = %d (%s)", code, body)
	}
	page := string(body)
	if !strings.Contains(page, "/dash/db/trace/"+sp.TraceID) {
		t.Fatalf("project page missing trace link:\n%s", page)
	}

	// The waterfall renders every span as an SVG bar with its name in the
	// gutter, plus the attribute table underneath.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/dash/db/trace/"+sp.TraceID+"?token=s3cret", "", nil)
	if code != http.StatusOK {
		t.Fatalf("waterfall = %d (%s)", code, body)
	}
	page = string(body)
	for _, want := range []string{"<svg", "cli.run", "harness.workload", "span attributes", "predator.accesses_dispatched"} {
		if !strings.Contains(page, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, page)
		}
	}
	for _, banned := range []string{"<script", "src=\"http", "href=\"http"} {
		if strings.Contains(page, banned) {
			t.Fatalf("waterfall references external asset %q", banned)
		}
	}

	if code, _, _ := do(t, http.MethodGet, ts.URL+"/dash/db/trace/ffffffffffffffffffffffffffffffff?token=s3cret", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace waterfall = %d, want 404", code)
	}
}
