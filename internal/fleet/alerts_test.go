package fleet

import (
	"strings"
	"testing"
	"time"
)

// alertStore opens a store plus an alerter sharing one fake clock.
func alertStore(t *testing.T, cfg AlertConfig) (*Store, *Alerter, *fakeClock) {
	t.Helper()
	fc := newFakeClock()
	s, err := OpenStore(StoreConfig{Dir: t.TempDir(), NoSync: true, Clock: fc.Now})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	cfg.Clock = fc.Now
	return s, NewAlerter(s, cfg), fc
}

func TestAlerterAgentSilent(t *testing.T) {
	s, a, fc := alertStore(t, AlertConfig{AgentTTL: 10 * time.Second})
	if err := s.AppendMetrics("acme", &MetricsPayload{Project: "db", Agent: "agent-1", Run: "r1"}); err != nil {
		t.Fatal(err)
	}
	if got := a.Alerts("acme", ""); len(got) != 0 {
		t.Fatalf("fresh agent alerted: %+v", got)
	}
	fc.Advance(11 * time.Second)
	got := a.Alerts("acme", "")
	if len(got) != 1 {
		t.Fatalf("alerts = %+v, want one agent_silent", got)
	}
	al := got[0]
	if al.Rule != RuleAgentSilent || al.Severity != SeverityWarn || al.Agent != "agent-1" || al.Run != "r1" {
		t.Fatalf("alert = %+v", al)
	}
	if al.Value != 11 {
		t.Fatalf("silence seconds = %v, want 11", al.Value)
	}
	if !strings.Contains(al.Message, "silent for 11s") {
		t.Fatalf("message = %q", al.Message)
	}
	// A new snapshot clears it.
	if err := s.AppendMetrics("acme", &MetricsPayload{Project: "db", Agent: "agent-1"}); err != nil {
		t.Fatal(err)
	}
	if got := a.Alerts("acme", ""); len(got) != 0 {
		t.Fatalf("alert survived fresh snapshot: %+v", got)
	}
}

func TestAlerterFindingDrift(t *testing.T) {
	s, a, _ := alertStore(t, AlertConfig{})
	ingest := func(run *FindingsPayload) {
		t.Helper()
		if _, err := s.AppendFindings("acme", run); err != nil {
			t.Fatal(err)
		}
	}
	ingest(mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 500)))
	if got := a.Alerts("acme", "db"); len(got) != 0 {
		t.Fatalf("single run alerted: %+v", got)
	}
	// Same counts: steady state, no drift.
	ingest(mkRun("r2", "db", "mysql", finding("counter", "false sharing", "observed", 500)))
	if got := a.Alerts("acme", "db"); len(got) != 0 {
		t.Fatalf("steady counts alerted: %+v", got)
	}
	// Count went up: crit.
	ingest(mkRun("r3", "db", "mysql",
		finding("counter", "false sharing", "observed", 500),
		finding("stats", "false sharing", "predicted", 900)))
	got := a.Alerts("acme", "db")
	if len(got) != 1 || got[0].Rule != RuleFindingDrift || got[0].Severity != SeverityCrit {
		t.Fatalf("alerts after increase = %+v", got)
	}
	if !strings.Contains(got[0].Message, "findings 1→2") || !strings.Contains(got[0].Message, "run r3 vs r2") {
		t.Fatalf("message = %q", got[0].Message)
	}
	// Count went down: warn.
	ingest(mkRun("r4", "db", "mysql"))
	got = a.Alerts("acme", "db")
	if len(got) != 1 || got[0].Severity != SeverityWarn {
		t.Fatalf("alerts after decrease = %+v", got)
	}
}

func TestAlerterSlowdownRegressionAgainstPreviousRun(t *testing.T) {
	s, a, _ := alertStore(t, AlertConfig{})
	base := mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 1))
	base.Bench = benchDocFor("mysql", 100, 200, 1) // 2.0x
	if _, err := s.AppendFindings("acme", base); err != nil {
		t.Fatal(err)
	}
	if got := a.Alerts("acme", "db"); len(got) != 0 {
		t.Fatalf("single bench run alerted: %+v", got)
	}
	head := mkRun("r2", "db", "mysql", finding("counter", "false sharing", "observed", 1))
	head.Bench = benchDocFor("mysql", 100, 400, 1) // 4.0x → ratio 2.0 vs prev, way over 10%
	if _, err := s.AppendFindings("acme", head); err != nil {
		t.Fatal(err)
	}
	got := a.Alerts("acme", "db")
	if len(got) != 1 {
		t.Fatalf("alerts = %+v, want one slowdown_regression", got)
	}
	al := got[0]
	if al.Rule != RuleSlowdownRegression || al.Severity != SeverityCrit || al.Run != "r2" {
		t.Fatalf("alert = %+v", al)
	}
	if al.Value != 2.0 {
		t.Fatalf("worst ratio = %v, want 2.0", al.Value)
	}
	if !strings.Contains(al.Message, "mysql/PREDATOR") {
		t.Fatalf("message = %q", al.Message)
	}
}

func TestAlerterSlowdownRegressionAgainstPinnedBaseline(t *testing.T) {
	baseline := benchDocFor("mysql", 100, 150, 1) // pinned 1.5x
	s, a, _ := alertStore(t, AlertConfig{Baseline: baseline})
	run := mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 1))
	run.Bench = benchDocFor("mysql", 100, 155, 1) // within 10% of the pin
	if _, err := s.AppendFindings("acme", run); err != nil {
		t.Fatal(err)
	}
	if got := a.Alerts("acme", "db"); len(got) != 0 {
		t.Fatalf("within-tolerance run alerted: %+v", got)
	}
	run2 := mkRun("r2", "db", "mysql", finding("counter", "false sharing", "observed", 1))
	run2.Bench = benchDocFor("mysql", 100, 300, 1) // 3.0x vs 1.5x pin
	if _, err := s.AppendFindings("acme", run2); err != nil {
		t.Fatal(err)
	}
	got := a.Alerts("acme", "db")
	if len(got) != 1 || got[0].Rule != RuleSlowdownRegression {
		t.Fatalf("alerts = %+v", got)
	}
	if got[0].Value != 2.0 { // 3.0 / 1.5
		t.Fatalf("ratio vs pin = %v, want 2.0", got[0].Value)
	}
}

func TestAlerterOrderingAndCountByRule(t *testing.T) {
	s, a, fc := alertStore(t, AlertConfig{AgentTTL: 5 * time.Second})
	// Project "aa": a silent agent (warn). Project "bb": finding drift up (crit).
	if err := s.AppendMetrics("acme", &MetricsPayload{Project: "aa", Agent: "agent-1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFindings("acme", mkRun("r1", "bb", "w")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFindings("acme", mkRun("r2", "bb", "w",
		finding("counter", "false sharing", "observed", 1))); err != nil {
		t.Fatal(err)
	}
	fc.Advance(6 * time.Second)
	got := a.Alerts("acme", "")
	if len(got) != 2 {
		t.Fatalf("alerts = %+v, want 2", got)
	}
	// Crit sorts before warn even though "aa" < "bb".
	if got[0].Rule != RuleFindingDrift || got[1].Rule != RuleAgentSilent {
		t.Fatalf("order = %s, %s", got[0].Rule, got[1].Rule)
	}
	if !strings.HasPrefix(got[0].String(), "[crit] finding_drift bb:") {
		t.Fatalf("String() = %q", got[0].String())
	}
	counts := a.CountByRule()
	if counts[RuleFindingDrift] != 1 || counts[RuleAgentSilent] != 1 {
		t.Fatalf("CountByRule = %v", counts)
	}
	// Project filter.
	if got := a.Alerts("acme", "aa"); len(got) != 1 || got[0].Rule != RuleAgentSilent {
		t.Fatalf("project-filtered alerts = %+v", got)
	}
}
