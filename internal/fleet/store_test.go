package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(StoreConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestStoreRoundtripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)

	if _, err := s.AppendFindings("acme", mkRun("r1", "db", "mysql",
		finding("counter", "false sharing", "observed", 500))); err != nil {
		t.Fatalf("AppendFindings r1: %v", err)
	}
	if _, err := s.AppendFindings("acme", mkRun("r2", "db", "mysql",
		finding("counter", "false sharing", "observed", 450),
		finding("table", "true sharing", "observed", 90))); err != nil {
		t.Fatalf("AppendFindings r2: %v", err)
	}
	if err := s.AppendMetrics("acme", &MetricsPayload{
		Project: "db", Agent: "agent-1", UnixMs: 10,
		Stats:    StatsSnapshot{Accesses: 1000, Invalidations: 70},
		HotLines: []HotLine{{Line: 4, Addr: 0x100, Invalidations: 70, Owners: "01S."}},
	}); err != nil {
		t.Fatalf("AppendMetrics: %v", err)
	}
	if err := s.AppendTrace("acme", &TracePayload{
		Meta: TraceMeta{Project: "db", Run: "r1", Bytes: 3}, Data: []byte{1, 2, 3},
	}); err != nil {
		t.Fatalf("AppendTrace: %v", err)
	}

	// Index queries against the live store.
	projects := s.Projects("acme")
	if len(projects) != 1 || projects[0].Project != "db" || projects[0].Runs != 2 ||
		projects[0].Findings != 3 || projects[0].Agents != 1 || projects[0].Traces != 1 {
		t.Fatalf("Projects = %+v", projects)
	}
	runs := s.Runs("acme", "db", 0)
	if len(runs) != 2 || runs[0].ID != "r2" || runs[1].ID != "r1" {
		t.Fatalf("Runs (newest first) = %+v", runs)
	}
	if runs[0].Counts.FalseSharing != 1 || runs[0].Counts.Findings != 2 {
		t.Fatalf("r2 counts = %+v", runs[0].Counts)
	}
	if got := s.Runs("acme", "db", 1); len(got) != 1 || got[0].ID != "r2" {
		t.Fatalf("Runs capped = %+v", got)
	}
	if fs := s.Findings("acme", "db", 0); len(fs) != 3 {
		t.Fatalf("Findings = %d, want 3", len(fs))
	}
	// Tenancy: another tenant sees nothing.
	if got := s.Projects("rival"); got != nil {
		t.Fatalf("cross-tenant Projects = %+v", got)
	}
	if got := s.Runs("rival", "db", 0); got != nil {
		t.Fatalf("cross-tenant Runs = %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the salvage scan rebuilds the identical index.
	s2 := openTestStore(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.Clean() || rec.Records != 4 {
		t.Fatalf("recovery = %+v, want 4 clean records", rec)
	}
	if runs := s2.Runs("acme", "db", 0); len(runs) != 2 || runs[0].ID != "r2" {
		t.Fatalf("recovered Runs = %+v", runs)
	}
	entry, err := s2.Run("acme", "db", "r1")
	if err != nil || entry.Counts.Findings != 1 {
		t.Fatalf("recovered Run(r1) = %+v, %v", entry, err)
	}
	if mps := s2.AgentMetrics("acme", "db"); len(mps) != 1 || mps[0].HotLines[0].Owners != "01S." {
		t.Fatalf("recovered AgentMetrics = %+v", mps)
	}
}

func TestStoreDuplicateRunIsIdempotent(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	if _, err := s.AppendFindings("acme", mkRun("r1", "db", "mysql",
		finding("counter", "false sharing", "observed", 500))); err != nil {
		t.Fatalf("first append: %v", err)
	}
	entry, err := s.AppendFindings("acme", mkRun("r1", "db", "mysql"))
	if !errors.Is(err, ErrDuplicateRun) {
		t.Fatalf("replay err = %v, want ErrDuplicateRun", err)
	}
	if entry == nil || entry.Duplicates != 1 || entry.Counts.Findings != 1 {
		t.Fatalf("replay entry = %+v", entry)
	}
	// The replay wrote nothing: only the original line is on disk.
	if got := s.Appends(); got != 1 {
		t.Fatalf("Appends = %d, want 1", got)
	}
}

func TestStoreRejectsUnidentifiedRuns(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	if _, err := s.AppendFindings("acme", &FindingsPayload{Run: RunMeta{Project: "db"}}); err == nil {
		t.Fatal("append without run id succeeded")
	}
	if _, err := s.AppendFindings("acme", &FindingsPayload{Run: RunMeta{ID: "r1"}}); err == nil {
		t.Fatal("append without project succeeded")
	}
	if err := s.AppendMetrics("acme", &MetricsPayload{Agent: "a"}); err == nil {
		t.Fatal("metrics without project succeeded")
	}
}

// TestStoreSalvageSkipsDamage damages a closed segment three ways — garbage
// line, payload corruption under an intact CRC, torn tail — and verifies the
// reopen salvages everything else.
func TestStoreSalvageSkipsDamage(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for _, id := range []string{"r1", "r2", "r3"} {
		if _, err := s.AppendFindings("acme", mkRun(id, "db", "mysql",
			finding("counter", "false sharing", "observed", 500))); err != nil {
			t.Fatalf("append %s: %v", id, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("segment has %d lines, want 3", len(lines))
	}
	// r2's payload bytes get stomped without updating the envelope CRC.
	corrupted := strings.Replace(lines[1], `"invalidations":500`, `"invalidations":999`, 1)
	if corrupted == lines[1] {
		t.Fatal("corruption target not found in line")
	}
	mangled := lines[0] + "\n{this is not json}\n" + corrupted + "\n" + lines[2] + "\n" +
		`{"v":1,"type":"findings","torn`
	if err := os.WriteFile(seg, []byte(mangled), 0o644); err != nil {
		t.Fatalf("writing mangled segment: %v", err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Records != 2 || rec.CorruptLines != 2 || rec.TruncatedTails != 1 {
		t.Fatalf("recovery = %+v, want 2 records, 2 corrupt, 1 torn tail", rec)
	}
	runs := s2.Runs("acme", "db", 0)
	if len(runs) != 2 || runs[0].ID != "r3" || runs[1].ID != "r1" {
		t.Fatalf("salvaged runs = %+v, want r3,r1 (r2 corrupt)", runs)
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreConfig{Dir: dir, NoSync: true, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, id := range []string{"r1", "r2", "r3", "r4"} {
		if _, err := s.AppendFindings("acme", mkRun(id, "db", "mysql",
			finding("counter", "false sharing", "observed", 500))); err != nil {
			t.Fatalf("append %s: %v", id, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := s.segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(names) < 2 {
		t.Fatalf("got %d segments, want rotation to have produced at least 2", len(names))
	}
	s2 := openTestStore(t, dir)
	defer s2.Close()
	if rec := s2.Recovery(); rec.Records != 4 || !rec.Clean() {
		t.Fatalf("recovery across segments = %+v", rec)
	}
}

// TestStoreSeedHistoryFixture opens the committed fixture — the repo's two
// historical bench sweeps (the retired BENCH_baseline.json and the PR-5 CI
// gate) ingested as fleet runs — proving stored segments stay readable
// across sessions and bench-backed diffs work on real documents.
func TestStoreSeedHistoryFixture(t *testing.T) {
	// OpenStore starts a fresh segment in its directory, so work on a copy.
	dir := t.TempDir()
	names, err := filepath.Glob(filepath.Join("testdata", "seed-history", "seg-*.jsonl"))
	if err != nil || len(names) == 0 {
		t.Fatalf("fixture segments: %v (%d found)", err, len(names))
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := openTestStore(t, dir)
	defer s.Close()
	if rec := s.Recovery(); !rec.Clean() || rec.Records != 2 {
		t.Fatalf("fixture recovery = %+v, want 2 clean records", rec)
	}
	runs := s.Runs("ci", "predator-ci", 0)
	if len(runs) != 2 || !runs[0].HasBench || !runs[1].HasBench {
		t.Fatalf("fixture runs = %+v", runs)
	}
	base, err := s.Run("ci", "predator-ci", "pr0-seed-baseline")
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	head, err := s.Run("ci", "predator-ci", "pr5-perf-gate")
	if err != nil {
		t.Fatalf("gate run: %v", err)
	}
	d, err := DiffRuns("predator-ci", base, head, 0.10)
	if err != nil {
		t.Fatalf("DiffRuns over fixture: %v", err)
	}
	if d.Bench == nil || len(d.Bench.Deltas) == 0 {
		t.Fatalf("fixture diff compared no bench rows: %+v", d.Bench)
	}
}

func TestStoreMetricsKeepsLatestPerAgent(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	for i, inval := range []uint64{10, 70} {
		if err := s.AppendMetrics("acme", &MetricsPayload{
			Project: "db", Agent: "agent-1", UnixMs: int64(i + 1),
			Stats: StatsSnapshot{Invalidations: inval},
		}); err != nil {
			t.Fatalf("AppendMetrics: %v", err)
		}
	}
	mps := s.AgentMetrics("acme", "db")
	if len(mps) != 1 || mps[0].Stats.Invalidations != 70 {
		t.Fatalf("AgentMetrics = %+v, want only the latest snapshot", mps)
	}
}

func TestStoreSegmentRetentionPrunesAcked(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreConfig{Dir: dir, NoSync: true, SegmentBytes: 512, RetainSegments: 2})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 0; i < 12; i++ {
		if _, err := s.AppendFindings("acme", mkRun(fmt.Sprintf("r%d", i), "db", "mysql",
			finding("counter", "false sharing", "observed", 500))); err != nil {
			t.Fatalf("append r%d: %v", i, err)
		}
	}
	names, err := s.segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(names) > 2 {
		t.Fatalf("%d segments on disk, retention of 2 did not prune: %v", len(names), names)
	}
	if s.PrunedSegments() == 0 {
		t.Fatal("no segments pruned despite many rotations")
	}
	// The active segment survived pruning and keeps accepting writes.
	if _, err := s.AppendFindings("acme", mkRun("tail", "db", "mysql")); err != nil {
		t.Fatalf("append after pruning: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen salvages cleanly from whatever survived.
	s2 := openTestStore(t, dir)
	defer s2.Close()
	if rec := s2.Recovery(); !rec.Clean() || rec.Records == 0 {
		t.Fatalf("recovery after pruning = %+v", rec)
	}
	if _, err := s2.Run("acme", "db", "tail"); err != nil {
		t.Fatalf("recent run lost to pruning: %v", err)
	}
}

func TestStoreFreshAgentMetricsExpiresSilent(t *testing.T) {
	fc := newFakeClock()
	s, err := OpenStore(StoreConfig{Dir: t.TempDir(), NoSync: true, Clock: fc.Now})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	app := func(agent string) {
		t.Helper()
		if err := s.AppendMetrics("acme", &MetricsPayload{Project: "db", Agent: agent}); err != nil {
			t.Fatalf("AppendMetrics: %v", err)
		}
	}
	app("stale-1")
	fc.Advance(40 * time.Second)
	app("fresh-1")
	fresh := s.FreshAgentMetrics("acme", "db", fc.Now(), 30*time.Second)
	if len(fresh) != 1 || fresh[0].Agent != "fresh-1" {
		t.Fatalf("FreshAgentMetrics = %+v, want only fresh-1", fresh)
	}
	// ttl=0 disables filtering; AgentMetrics keeps the old behaviour.
	if all := s.AgentMetrics("acme", "db"); len(all) != 2 {
		t.Fatalf("AgentMetrics = %+v, want both agents", all)
	}
	// Agents exposes server-side last-seen stamps for the alerter.
	ags := s.Agents("acme", "db")
	if len(ags) != 2 || ags[0].Agent != "fresh-1" || ags[1].Agent != "stale-1" {
		t.Fatalf("Agents = %+v", ags)
	}
	if ags[1].LastSeenMs >= ags[0].LastSeenMs {
		t.Fatalf("stale agent not older: %+v", ags)
	}
}
