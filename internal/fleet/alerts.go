package fleet

import (
	"fmt"
	"sort"
	"time"

	"predator/internal/eval"
)

// Alert rules.
const (
	// RuleFindingDrift fires when the two most recent runs of a project
	// report different finding or false-sharing counts — the fleet-side
	// analogue of the CI gate's exact-drift check.
	RuleFindingDrift = "finding_drift"
	// RuleSlowdownRegression fires when the latest benchmark-carrying run's
	// slowdown ratios regressed beyond tolerance against the baseline
	// (a pinned document like BENCH_pr9.json, or the previous bench run).
	RuleSlowdownRegression = "slowdown_regression"
	// RuleAgentSilent fires when an agent's metrics stream has been silent
	// past the TTL — the same TTL that expires its hotlines contribution.
	RuleAgentSilent = "agent_silent"
)

// Alert severities.
const (
	SeverityWarn = "warn"
	SeverityCrit = "crit"
)

// DefaultAgentTTL is how long an agent's metrics stream may go silent
// before it alerts and its /api/v1/hotlines contribution expires.
const DefaultAgentTTL = 30 * time.Second

// Alert is one active anomaly, as served by /api/v1/alerts and rendered on
// the dashboard and predtop's ALERT row.
type Alert struct {
	Project  string  `json:"project"`
	Rule     string  `json:"rule"`
	Severity string  `json:"severity"`
	Message  string  `json:"message"`
	Agent    string  `json:"agent,omitempty"`
	Run      string  `json:"run,omitempty"`
	Value    float64 `json:"value,omitempty"`
	SinceMs  int64   `json:"since_unix_ms,omitempty"`
}

// String renders the one-line form predtop's ALERT row shows.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s %s: %s", a.Severity, a.Rule, a.Project, a.Message)
}

// AlertConfig tunes the alert engine. Zero values take the defaults.
type AlertConfig struct {
	// AgentTTL is the silence threshold (default DefaultAgentTTL).
	AgentTTL time.Duration
	// Tolerance is the slowdown-ratio drift CompareBench accepts before a
	// regression alert (0 = eval.DefaultBenchTolerance).
	Tolerance float64
	// Baseline, when non-nil, pins the benchmark baseline every run is
	// compared against (predfleet -bench-baseline BENCH_pr9.json). Nil falls
	// back to the project's previous benchmark-carrying run.
	Baseline *eval.BenchDoc
	// Clock substitutes time.Now (tests).
	Clock func() time.Time
}

// Alerter evaluates alert rules over current store state. Evaluation is
// stateless and on demand (query time, dashboard render, metrics scrape):
// the store index is the single source of truth, so there is no background
// goroutine to crash or fall behind.
type Alerter struct {
	store *Store
	cfg   AlertConfig
}

// NewAlerter wires the engine; cfg zero values are defaulted.
func NewAlerter(store *Store, cfg AlertConfig) *Alerter {
	if cfg.AgentTTL <= 0 {
		cfg.AgentTTL = DefaultAgentTTL
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = eval.DefaultBenchTolerance
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Alerter{store: store, cfg: cfg}
}

// AgentTTL exposes the configured silence threshold (the hotlines filter
// uses the same value so the two surfaces agree on "stale").
func (a *Alerter) AgentTTL() time.Duration { return a.cfg.AgentTTL }

// Alerts evaluates every rule for one tenant, across all projects
// (project == "") or one. Results are ordered severity-first (crit before
// warn), then project, then rule — the order the ALERT row truncates in.
func (a *Alerter) Alerts(tenant, project string) []Alert {
	var projects []string
	if project != "" {
		projects = []string{project}
	} else {
		for _, pi := range a.store.Projects(tenant) {
			projects = append(projects, pi.Project)
		}
	}
	now := a.cfg.Clock()
	var out []Alert
	for _, p := range projects {
		out = append(out, a.evalProject(tenant, p, now)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := severityRank(out[i].Severity), severityRank(out[j].Severity)
		if si != sj {
			return si < sj
		}
		if out[i].Project != out[j].Project {
			return out[i].Project < out[j].Project
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

func severityRank(s string) int {
	if s == SeverityCrit {
		return 0
	}
	return 1
}

// evalProject runs the three rules over one project.
func (a *Alerter) evalProject(tenant, project string, now time.Time) []Alert {
	var out []Alert

	// Agent silence: the metrics stream ticks every couple of seconds while
	// a run executes, so a gap past the TTL means the agent died, hung, or
	// lost its network path.
	for _, ag := range a.store.Agents(tenant, project) {
		silent := now.UnixMilli() - ag.LastSeenMs
		if silent > a.cfg.AgentTTL.Milliseconds() {
			out = append(out, Alert{
				Project:  project,
				Rule:     RuleAgentSilent,
				Severity: SeverityWarn,
				Agent:    ag.Agent,
				Run:      ag.Run,
				Value:    float64(silent) / 1000.0,
				SinceMs:  ag.LastSeenMs,
				Message: fmt.Sprintf("agent %s silent for %ds (ttl %s)",
					ag.Agent, silent/1000, a.cfg.AgentTTL),
			})
		}
	}

	runs := a.store.RunHistory(tenant, project)
	if len(runs) >= 2 {
		prev, head := runs[len(runs)-2], runs[len(runs)-1]
		if prev.Counts.Findings != head.Counts.Findings ||
			prev.Counts.FalseSharing != head.Counts.FalseSharing {
			sev := SeverityWarn
			if head.Counts.Findings > prev.Counts.Findings ||
				head.Counts.FalseSharing > prev.Counts.FalseSharing {
				sev = SeverityCrit
			}
			out = append(out, Alert{
				Project:  project,
				Rule:     RuleFindingDrift,
				Severity: sev,
				Run:      head.Meta.ID,
				Value:    float64(head.Counts.Findings - prev.Counts.Findings),
				SinceMs:  head.IngestMs,
				Message: fmt.Sprintf("findings %d→%d, false sharing %d→%d (run %s vs %s)",
					prev.Counts.Findings, head.Counts.Findings,
					prev.Counts.FalseSharing, head.Counts.FalseSharing,
					head.Meta.ID, prev.Meta.ID),
			})
		}
	}

	if al, ok := a.slowdownAlert(project, runs); ok {
		out = append(out, al)
	}
	return out
}

// slowdownAlert compares the newest benchmark-carrying run against the
// baseline (pinned, or the previous bench run) through eval.CompareBench —
// the exact machinery the CI bench gate uses, so fleet alerts and CI agree
// on what "regressed" means.
func (a *Alerter) slowdownAlert(project string, runs []*RunEntry) (Alert, bool) {
	var head *RunEntry
	var prevBench *eval.BenchDoc
	for i := len(runs) - 1; i >= 0; i-- {
		if runs[i].Bench == nil {
			continue
		}
		if head == nil {
			head = runs[i]
			continue
		}
		prevBench = runs[i].Bench
		break
	}
	if head == nil {
		return Alert{}, false
	}
	baseline := a.cfg.Baseline
	if baseline == nil {
		baseline = prevBench
	}
	if baseline == nil {
		return Alert{}, false
	}
	cmp, err := eval.CompareBench(baseline, head.Bench, a.cfg.Tolerance)
	if err != nil || cmp.Regressions == 0 {
		return Alert{}, false
	}
	worst := 0.0
	worstAt := ""
	for _, d := range cmp.Deltas {
		if d.Regressed && d.Ratio > worst {
			worst = d.Ratio
			worstAt = d.Workload + "/" + d.Mode
		}
	}
	return Alert{
		Project:  project,
		Rule:     RuleSlowdownRegression,
		Severity: SeverityCrit,
		Run:      head.Meta.ID,
		Value:    worst,
		SinceMs:  head.IngestMs,
		Message: fmt.Sprintf("%d slowdown regression(s), worst %.2fx at %s (run %s, tolerance %.0f%%)",
			cmp.Regressions, worst, worstAt, head.Meta.ID, a.cfg.Tolerance*100),
	}, true
}

// CountByRule tallies active alerts per rule across every tenant — the
// Prometheus gauge feed.
func (a *Alerter) CountByRule() map[string]int {
	out := map[string]int{}
	for _, tenant := range a.store.Tenants() {
		for _, al := range a.Alerts(tenant, "") {
			out[al.Rule]++
		}
	}
	return out
}
