package fleet

import (
	"testing"
)

// entryOf builds a RunEntry the way the store index would hold it.
func entryOf(fp *FindingsPayload) *RunEntry {
	return &RunEntry{Meta: fp.Run, Counts: SumCounts(fp.Reports), Reports: fp.Reports, Bench: fp.Bench}
}

func TestDiffRunsFindingSets(t *testing.T) {
	base := entryOf(mkRun("base", "db", "mysql",
		finding("gone", "false sharing", "observed", 300),
		finding("stays", "false sharing", "observed", 100)))
	head := entryOf(mkRun("head", "db", "mysql",
		finding("stays", "false sharing", "observed", 250),
		finding("fresh", "false sharing", "predicted (offset 24)", 900)))

	d, err := DiffRuns("db", base, head, 0)
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if len(d.New) != 1 || d.New[0].Label != "fresh" {
		t.Fatalf("New = %+v", d.New)
	}
	if len(d.Resolved) != 1 || d.Resolved[0].Label != "gone" {
		t.Fatalf("Resolved = %+v", d.Resolved)
	}
	if d.Common != 1 || len(d.Changed) != 1 {
		t.Fatalf("Common = %d, Changed = %+v", d.Common, d.Changed)
	}
	if c := d.Changed[0]; c.Label != "stays" || c.BaseInvalidations != 100 || c.Ratio != 2.5 {
		t.Fatalf("Changed[0] = %+v", d.Changed[0])
	}
	if !d.Regressed {
		t.Fatal("a new finding must mark the delta regressed")
	}
	if d.BaseCounts.Findings != 2 || d.HeadCounts.Findings != 2 {
		t.Fatalf("counts = %+v / %+v", d.BaseCounts, d.HeadCounts)
	}
}

func TestDiffRunsCleanHead(t *testing.T) {
	base := entryOf(mkRun("base", "db", "mysql",
		finding("fixed-now", "false sharing", "observed", 300)))
	head := entryOf(mkRun("head", "db", "mysql"))

	d, err := DiffRuns("db", base, head, 0)
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if len(d.New) != 0 || len(d.Resolved) != 1 || d.Regressed {
		t.Fatalf("clean head delta = %+v", d)
	}
}

// Findings are matched by identity (workload|object|source), not by counts:
// the same object moving between runs is "changed", not new+resolved.
func TestDiffRunsIdentityAcrossWorkloads(t *testing.T) {
	base := entryOf(mkRun("base", "db", "mysql",
		finding("obj", "false sharing", "observed", 100)))
	head := entryOf(mkRun("head", "db", "kmeans",
		finding("obj", "false sharing", "observed", 100)))

	d, err := DiffRuns("db", base, head, 0)
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	// Same label under a different workload is a different finding.
	if len(d.New) != 1 || len(d.Resolved) != 1 || d.Common != 0 {
		t.Fatalf("cross-workload delta = %+v", d)
	}
}

func TestDiffRunsBenchComparison(t *testing.T) {
	base := entryOf(mkRun("base", "db", "mysql"))
	base.Bench = benchDocFor("mysql", 100, 500, 0) // 5x slowdown baseline
	head := entryOf(mkRun("head", "db", "mysql"))
	head.Bench = benchDocFor("mysql", 100, 900, 0) // 9x: an 80% regression

	d, err := DiffRuns("db", base, head, 0.10)
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if d.Bench == nil || d.Bench.Regressions != 1 {
		t.Fatalf("Bench = %+v, want 1 regression", d.Bench)
	}
	if !d.Regressed {
		t.Fatal("bench regression must mark the delta regressed")
	}

	// Within tolerance: no regression flag.
	head.Bench = benchDocFor("mysql", 100, 520, 0)
	d, err = DiffRuns("db", base, head, 0.10)
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if d.Bench == nil || d.Bench.Regressions != 0 || d.Regressed {
		t.Fatalf("in-tolerance delta = regressions %d, regressed %v", d.Bench.Regressions, d.Regressed)
	}
}
