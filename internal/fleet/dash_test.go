package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"predator/internal/fleet/tsdb"
)

// newObsTestServer stands up the full observability wiring: store with a
// collector observer feeding a tsdb, server with series/alerts/dash enabled,
// everything on one fake clock.
func newObsTestServer(t *testing.T, alerts AlertConfig) (*httptest.Server, *fakeClock) {
	t.Helper()
	fc := newFakeClock()
	col := NewCollector(tsdb.New(tsdb.Config{}))
	store, err := OpenStore(StoreConfig{Dir: t.TempDir(), NoSync: true, Observer: col, Clock: fc.Now})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	alerts.Clock = fc.Now
	srv, err := NewServer(ServerConfig{
		Store:  store,
		Tokens: map[string]string{"s3cret": "acme"},
		Clock:  fc.Now,
		TSDB:   col.DB(),
		Alerts: alerts,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		store.Close()
	})
	return ts, fc
}

func postMetrics(t *testing.T, base string, mp *MetricsPayload) {
	t.Helper()
	body, _ := json.Marshal(mp)
	code, data, _ := do(t, http.MethodPost, base+"/api/v1/ingest/metrics", "s3cret", body)
	if code != http.StatusOK {
		t.Fatalf("ingest metrics = %d (%s)", code, data)
	}
}

func TestServerSeriesEndpoint(t *testing.T) {
	ts, fc := newObsTestServer(t, AlertConfig{})
	postMetrics(t, ts.URL, &MetricsPayload{Project: "db", Agent: "a1",
		Stats: StatsSnapshot{Invalidations: 100, TrackedLines: 5}})
	fc.Advance(2 * time.Second)
	postMetrics(t, ts.URL, &MetricsPayload{Project: "db", Agent: "a1",
		Stats: StatsSnapshot{Invalidations: 300, TrackedLines: 5}})

	// Listing form: no ?name=.
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/series?project=db", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("series listing = %d (%s)", code, body)
	}
	var list SeriesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decode: %v", err)
	}
	hasInval := false
	for _, n := range list.Names {
		if n == SeriesInvalRate {
			hasInval = true
		}
	}
	if !hasInval {
		t.Fatalf("series names = %v, want %s present", list.Names, SeriesInvalRate)
	}

	// Point form.
	code, body, _ = do(t, http.MethodGet,
		ts.URL+"/api/v1/series?project=db&name="+SeriesInvalRate+"&res=raw", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("series query = %d (%s)", code, body)
	}
	var pts SeriesResponse
	if err := json.Unmarshal(body, &pts); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pts.Count != 1 || pts.Points[0].Sum != 100 {
		t.Fatalf("points = %+v, want one 100/s sample", pts.Points)
	}

	// Validation.
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/series", "s3cret", nil); code != http.StatusBadRequest {
		t.Fatalf("missing project = %d, want 400", code)
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/api/v1/series?project=db&name=x&res=5s", "s3cret", nil); code != http.StatusBadRequest {
		t.Fatalf("bad res = %d, want 400", code)
	}
}

func TestServerSeriesDisabledWithoutTSDB(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/series?project=db", "s3cret", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("series without tsdb = %d (%s), want 503", code, body)
	}
}

// TestServerSlowdownRegressionVisibleEverywhere is the acceptance loop: a
// seeded bench regression must surface in /api/v1/alerts, the Prometheus
// /metrics scrape, and the hotlines response predtop renders.
func TestServerSlowdownRegressionVisibleEverywhere(t *testing.T) {
	ts, fc := newObsTestServer(t, AlertConfig{})
	base := mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 9))
	base.Bench = benchDocFor("mysql", 100, 200, 1)
	postRun(t, ts.URL, "s3cret", base, http.StatusCreated)
	fc.Advance(time.Minute)
	head := mkRun("r2", "db", "mysql", finding("counter", "false sharing", "observed", 9))
	head.Bench = benchDocFor("mysql", 100, 400, 1)
	postRun(t, ts.URL, "s3cret", head, http.StatusCreated)

	// /api/v1/alerts
	code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/alerts?project=db", "s3cret", nil)
	if code != http.StatusOK {
		t.Fatalf("alerts = %d (%s)", code, body)
	}
	var ar AlertsResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ar.Count != 1 || ar.Alerts[0].Rule != RuleSlowdownRegression || ar.Alerts[0].Severity != SeverityCrit {
		t.Fatalf("alerts = %+v, want one crit slowdown_regression", ar.Alerts)
	}

	// Prometheus /metrics
	_, body, _ = do(t, http.MethodGet, ts.URL+"/metrics", "", nil)
	if !strings.Contains(string(body), "predfleet_alerts_slowdown_regression 1") {
		t.Fatalf("metrics missing alert gauge:\n%s", body)
	}

	// /api/v1/hotlines carries the pre-rendered ALERT rows.
	_, body, _ = do(t, http.MethodGet, ts.URL+"/api/v1/hotlines?project=db", "s3cret", nil)
	var hl HotLinesResponse
	if err := json.Unmarshal(body, &hl); err != nil {
		t.Fatalf("decode hotlines: %v", err)
	}
	if len(hl.Alerts) != 1 || !strings.Contains(hl.Alerts[0], "slowdown_regression") {
		t.Fatalf("hotlines alerts = %v", hl.Alerts)
	}
}

func TestServerHotLinesExpireSilentAgents(t *testing.T) {
	ts, fc := newObsTestServer(t, AlertConfig{AgentTTL: 10 * time.Second})
	postMetrics(t, ts.URL, &MetricsPayload{Project: "db", Agent: "a1",
		Stats:    StatsSnapshot{Invalidations: 50},
		HotLines: []HotLine{{Addr: 0x1000, Invalidations: 50}}})

	fetch := func() HotLinesResponse {
		t.Helper()
		code, body, _ := do(t, http.MethodGet, ts.URL+"/api/v1/hotlines?project=db", "s3cret", nil)
		if code != http.StatusOK {
			t.Fatalf("hotlines = %d (%s)", code, body)
		}
		var hl HotLinesResponse
		if err := json.Unmarshal(body, &hl); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return hl
	}
	if hl := fetch(); hl.Agents != 1 || len(hl.Lines) != 1 {
		t.Fatalf("fresh agent missing: %+v", hl)
	}
	fc.Advance(11 * time.Second)
	hl := fetch()
	if hl.Agents != 0 || len(hl.Lines) != 0 {
		t.Fatalf("silent agent still aggregated: %+v", hl)
	}
	if len(hl.Alerts) != 1 || !strings.Contains(hl.Alerts[0], "agent_silent") {
		t.Fatalf("expected agent_silent alert, got %v", hl.Alerts)
	}
}

func TestServerDashboardPages(t *testing.T) {
	ts, fc := newObsTestServer(t, AlertConfig{})
	for i, id := range []string{"r1", "r2"} {
		run := mkRun(id, "db", "mysql", finding("counter", "false sharing", "observed", uint64(100*(i+1))))
		postRun(t, ts.URL, "s3cret", run, http.StatusCreated)
		fc.Advance(time.Minute)
	}
	postMetrics(t, ts.URL, &MetricsPayload{Project: "db", Agent: "a1",
		Stats: StatsSnapshot{Invalidations: 10, TrackedLines: 2}})

	// The index authenticates via ?token= (a browser sets no headers).
	code, body, _ := do(t, http.MethodGet, ts.URL+"/dash?token=s3cret", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/dash = %d (%s)", code, body)
	}
	page := string(body)
	if !strings.Contains(page, "/dash/db?token=s3cret") {
		t.Fatalf("index missing project link:\n%s", page)
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/dash", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /dash = %d, want 401", code)
	}

	code, body, _ = do(t, http.MethodGet, ts.URL+"/dash/db?token=s3cret", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/dash/db = %d (%s)", code, body)
	}
	page = string(body)
	for _, want := range []string{"<svg", "polyline", "run history", "r1", "r2", "hottest lines", "mysql|"} {
		if !strings.Contains(page, want) {
			t.Fatalf("project page missing %q:\n%s", want, page)
		}
	}
	// Zero external assets: no script tags, no http(s) fetches.
	for _, banned := range []string{"<script", "src=\"http", "href=\"http", "@import"} {
		if strings.Contains(page, banned) {
			t.Fatalf("project page references external asset %q", banned)
		}
	}
	if code, _, _ := do(t, http.MethodGet, ts.URL+"/dash/missing?token=s3cret", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown project dash = %d, want 404", code)
	}
}
