package fleet

import (
	"sort"

	"predator/internal/eval"
	"predator/internal/report"
)

// FindingRef names one finding in a diff: enough identity to act on
// (workload, object, source) plus the severity signal (invalidations).
type FindingRef struct {
	Workload      string `json:"workload"`
	Key           string `json:"key"`
	Sharing       string `json:"sharing"`
	Source        string `json:"source"`
	Label         string `json:"label,omitempty"`
	Invalidations uint64 `json:"invalidations"`
}

// ChangedRef is a finding present in both runs whose invalidation count
// moved; Ratio is head/base (0 when base was 0).
type ChangedRef struct {
	FindingRef
	BaseInvalidations uint64  `json:"base_invalidations"`
	Ratio             float64 `json:"ratio,omitempty"`
}

// RunDelta is the /api/v1/diff response: the regression verdict between two
// ingested runs of one project. New findings are regressions, resolved
// findings are wins, and when both runs carried benchmark documents the
// slowdown-ratio comparison (eval.CompareBench — the same machinery as the
// CI bench gate) rides along.
type RunDelta struct {
	Project string `json:"project"`
	Base    string `json:"base"`
	Head    string `json:"head"`

	BaseCounts report.Counts `json:"base_counts"`
	HeadCounts report.Counts `json:"head_counts"`

	New      []FindingRef `json:"new_findings"`
	Resolved []FindingRef `json:"resolved_findings"`
	Changed  []ChangedRef `json:"changed_findings,omitempty"`
	Common   int          `json:"common"`

	// Bench is present when both runs carried -bench-json documents.
	Bench *eval.BenchComparison `json:"bench,omitempty"`

	// Regressed sums the ways head is worse than base: any new finding, or
	// any benchmark slowdown-ratio regression.
	Regressed bool `json:"regressed"`
}

// findingSet indexes a run's findings by identity key (first occurrence
// wins — duplicate keys within one run collapse, mirroring how a human
// reads the report).
func findingSet(reports map[string]report.JSONReport) map[string]FindingRef {
	out := map[string]FindingRef{}
	workloads := make([]string, 0, len(reports))
	for w := range reports {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	for _, w := range workloads {
		rep := reports[w]
		for i := range rep.Findings {
			f := &rep.Findings[i]
			key := FindingKey(w, f)
			if _, ok := out[key]; ok {
				continue
			}
			ref := FindingRef{
				Workload:      w,
				Key:           key,
				Sharing:       f.Sharing,
				Source:        f.Source,
				Invalidations: f.Invalidations,
			}
			if f.Object != nil {
				ref.Label = f.Object.Label
			}
			out[key] = ref
		}
	}
	return out
}

// DiffRuns computes the regression delta from base to head. tolerance
// applies to the benchmark comparison (0 = eval.DefaultBenchTolerance).
func DiffRuns(project string, base, head *RunEntry, tolerance float64) (*RunDelta, error) {
	d := &RunDelta{
		Project:    project,
		Base:       base.Meta.ID,
		Head:       head.Meta.ID,
		BaseCounts: base.Counts,
		HeadCounts: head.Counts,
	}
	baseSet := findingSet(base.Reports)
	headSet := findingSet(head.Reports)
	for key, ref := range headSet {
		prev, ok := baseSet[key]
		if !ok {
			d.New = append(d.New, ref)
			continue
		}
		d.Common++
		if prev.Invalidations != ref.Invalidations {
			c := ChangedRef{FindingRef: ref, BaseInvalidations: prev.Invalidations}
			if prev.Invalidations > 0 {
				c.Ratio = float64(ref.Invalidations) / float64(prev.Invalidations)
			}
			d.Changed = append(d.Changed, c)
		}
	}
	for key, ref := range baseSet {
		if _, ok := headSet[key]; !ok {
			d.Resolved = append(d.Resolved, ref)
		}
	}
	sortRefs(d.New)
	sortRefs(d.Resolved)
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Key < d.Changed[j].Key })

	if base.Bench != nil && head.Bench != nil {
		cmp, err := eval.CompareBench(base.Bench, head.Bench, tolerance)
		if err != nil {
			return nil, err
		}
		d.Bench = cmp
	}
	d.Regressed = len(d.New) > 0 || (d.Bench != nil && d.Bench.Regressions > 0)
	return d, nil
}

// sortRefs orders finding refs deterministically (hottest first, key as
// tiebreak) so diffs are stable across servers.
func sortRefs(refs []FindingRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Invalidations != refs[j].Invalidations {
			return refs[i].Invalidations > refs[j].Invalidations
		}
		return refs[i].Key < refs[j].Key
	})
}
