package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"predator/internal/eval"
	"predator/internal/report"
)

// Store is the fleet service's persistent findings store: an append-only
// sequence of JSONL segment files under one directory, fronted by an
// in-memory index rebuilt on open. Durability contract: an ingestion is
// acknowledged only after its envelope line is written (and, with Sync on,
// fsynced) to the active segment — so a kill at any point loses no
// acknowledged record. Recovery is a salvage scan: every segment is read
// line by line, and malformed JSON, CRC mismatches, and the torn tail a
// crash mid-append leaves behind are skipped and accounted rather than
// fatal. The store never appends to a pre-existing segment (it might end in
// a torn line); each open starts a fresh one.
type Store struct {
	cfg StoreConfig

	mu       sync.Mutex
	seg      *os.File
	segW     io.Writer // seg, possibly wrapped by cfg.WrapWriter
	segBytes int64
	segIndex int // numeric suffix of the active segment

	idx      map[string]*tenantIndex // by tenant
	recovery RecoveryStats
	appends  uint64
	pruned   uint64 // segment files removed by retention
}

// Observer receives every record the store accepts — both live appends and
// the startup salvage scan, in log order. This is how the time-series engine
// gets crash-safe persistence without a WAL of its own: the JSONL segments
// are the durable log, and a restart replays them through the observer to
// rebuild derived state (rings, rollups, per-agent cursors). Calls happen
// with the store lock held; observers must not call back into the store.
type Observer interface {
	// ObserveMetrics sees one accepted metrics snapshot. recvMs is the
	// server-side ingestion time stamped into the envelope.
	ObserveMetrics(tenant string, mp *MetricsPayload, recvMs int64)
	// ObserveRun sees one accepted findings run after indexing.
	ObserveRun(tenant, project string, e *RunEntry)
}

// StoreConfig configures OpenStore.
type StoreConfig struct {
	// Dir is the store directory; created if absent.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync disables the fsync after every findings append. Metrics and
	// trace appends are never individually synced; findings are, unless
	// this is set (tests, or operators preferring throughput).
	NoSync bool
	// MaxLineBytes bounds how long a stored line may be before the salvage
	// scan declares it corrupt (0 = DefaultMaxLineBytes). Guards recovery
	// against a mangled segment that lost its newlines.
	MaxLineBytes int
	// WrapWriter, when non-nil, wraps every segment file writer — the
	// fault-injection hook the chaos tests use to fail the disk sink
	// mid-append. Production leaves it nil.
	WrapWriter func(io.Writer) io.Writer
	// RetainSegments, when > 0, caps how many segment files the store keeps:
	// at each rotation the oldest fully-acked segments beyond the cap are
	// deleted (never the active one). 0 keeps everything.
	RetainSegments int
	// Observer, when non-nil, sees every accepted record (recovery scan and
	// live appends) — the tsdb feed.
	Observer Observer
	// Clock substitutes time.Now (tests). Nil means time.Now.
	Clock func() time.Time
}

// Store tuning defaults.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultMaxLineBytes = 32 << 20
)

// RecoveryStats accounts what the salvage scan found while rebuilding the
// index from on-disk segments.
type RecoveryStats struct {
	Segments       int    `json:"segments"`
	Records        uint64 `json:"records"`
	Bytes          int64  `json:"bytes"`
	CorruptLines   uint64 `json:"corrupt_lines,omitempty"`   // unparseable JSON or CRC mismatch
	TruncatedTails uint64 `json:"truncated_tails,omitempty"` // segments ending mid-line
	DuplicateRuns  uint64 `json:"duplicate_runs,omitempty"`  // replayed run IDs skipped
	UnknownTypes   uint64 `json:"unknown_types,omitempty"`
}

// Clean reports whether recovery found nothing to complain about.
func (s RecoveryStats) Clean() bool {
	return s.CorruptLines == 0 && s.TruncatedTails == 0 && s.UnknownTypes == 0
}

// tenantIndex is one tenant's slice of the fleet.
type tenantIndex struct {
	projects map[string]*projectIndex
}

// projectIndex holds one project's run history and live agent telemetry.
type projectIndex struct {
	name string
	runs []*RunEntry // ingestion order
	byID map[string]*RunEntry
	// metrics holds the latest metrics payload per agent, stamped with the
	// server-side receive time so staleness survives agent clock skew.
	metrics map[string]*agentMetrics
	traces  []TraceMeta
	// spanDocs holds ingested span snapshots in arrival order; the two maps
	// index the same entries by run ID and by trace ID so the waterfall view
	// resolves either form of reference (a finding's run, a span's trace).
	spanDocs     []*SpansPayload
	spansByRun   map[string]*SpansPayload
	spansByTrace map[string]*SpansPayload
}

// agentMetrics is one agent's latest snapshot plus when the server took it.
type agentMetrics struct {
	payload *MetricsPayload
	recvMs  int64
}

// RunEntry is one ingested findings run as the index holds it.
type RunEntry struct {
	Meta       RunMeta
	Counts     report.Counts
	Reports    map[string]report.JSONReport
	Bench      *eval.BenchDoc
	IngestMs   int64 // server-side ingestion time
	Duplicates int   // replays of this run ID seen (and skipped)
}

// ErrDuplicateRun reports a replayed run ID: the run is already durable, so
// ingestion treats the replay as an idempotent success.
var ErrDuplicateRun = errors.New("fleet: duplicate run id")

// ErrUnknownRun reports a query for a run ID the project has no record of.
var ErrUnknownRun = errors.New("fleet: unknown run")

// OpenStore opens (creating if needed) the store directory, salvage-scans
// every existing segment to rebuild the index, and starts a fresh active
// segment for this process's appends.
func OpenStore(cfg StoreConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: store needs a directory")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	s := &Store{cfg: cfg, idx: map[string]*tenantIndex{}}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentName formats the n-th segment's file name; the zero-padded index
// keeps lexical order equal to creation order for recovery.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.jsonl", n) }

// segments lists existing segment files in creation order.
func (s *Store) segments() ([]string, error) {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// recover rebuilds the in-memory index by salvage-scanning every segment.
func (s *Store) recover() error {
	names, err := s.segments()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.scanSegment(filepath.Join(s.cfg.Dir, name)); err != nil {
			return err
		}
		s.recovery.Segments++
		// Track the highest existing index so the fresh segment sorts after.
		var n int
		if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &n); err == nil && n > s.segIndex {
			s.segIndex = n
		}
	}
	return nil
}

// scanSegment reads one segment, applying every valid envelope to the index
// and accounting everything else. Only I/O errors are fatal: untrusted
// on-disk bytes must never prevent the service from starting.
func (s *Store) scanSegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	for {
		line, err := readLine(br, s.cfg.MaxLineBytes)
		switch {
		case err == io.EOF && len(line) == 0:
			return nil
		case err == io.EOF:
			// Bytes after the final newline: the torn tail of a crashed
			// append. Skipped; the record was never acknowledged.
			s.recovery.TruncatedTails++
			return nil
		case err == errLineTooLong:
			s.recovery.CorruptLines++
			if skipErr := skipToNewline(br); skipErr == io.EOF {
				return nil
			} else if skipErr != nil {
				return fmt.Errorf("fleet: %w", skipErr)
			}
			continue
		case err != nil:
			return fmt.Errorf("fleet: %w", err)
		}
		s.recovery.Bytes += int64(len(line)) + 1
		var env Envelope
		if jsonErr := json.Unmarshal(line, &env); jsonErr != nil {
			s.recovery.CorruptLines++
			continue
		}
		if env.CRC != "" && env.CRC != PayloadCRC(env.Payload) {
			s.recovery.CorruptLines++
			continue
		}
		switch s.apply(&env) {
		case nil:
			s.recovery.Records++
		case ErrDuplicateRun:
			s.recovery.DuplicateRuns++
		default:
			s.recovery.CorruptLines++
		}
	}
}

// errLineTooLong marks a line exceeding MaxLineBytes.
var errLineTooLong = errors.New("fleet: line exceeds MaxLineBytes")

// readLine reads one newline-terminated line (newline stripped), failing
// with errLineTooLong once a line exceeds max, and io.EOF at end of input
// (with any unterminated partial line returned alongside it).
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == nil {
			return bytes.TrimRight(buf, "\n"), nil
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > max {
				return nil, errLineTooLong
			}
			continue
		}
		if err == io.EOF {
			return buf, io.EOF
		}
		return nil, err
	}
}

// skipToNewline discards bytes up to and including the next newline.
func skipToNewline(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// tenant returns (creating) one tenant's index slice.
func (s *Store) tenant(name string) *tenantIndex {
	t, ok := s.idx[name]
	if !ok {
		t = &tenantIndex{projects: map[string]*projectIndex{}}
		s.idx[name] = t
	}
	return t
}

// project returns (creating) one project's index within a tenant.
func (t *tenantIndex) project(name string) *projectIndex {
	p, ok := t.projects[name]
	if !ok {
		p = &projectIndex{
			name:         name,
			byID:         map[string]*RunEntry{},
			metrics:      map[string]*agentMetrics{},
			spansByRun:   map[string]*SpansPayload{},
			spansByTrace: map[string]*SpansPayload{},
		}
		t.projects[name] = p
	}
	return p
}

// apply folds one valid envelope into the index. Caller holds s.mu (or is
// the single-threaded recovery scan).
func (s *Store) apply(env *Envelope) error {
	if env.Tenant == "" || env.Project == "" {
		return fmt.Errorf("fleet: envelope missing tenant/project")
	}
	p := s.tenant(env.Tenant).project(env.Project)
	switch env.Type {
	case TypeFindings:
		var fp FindingsPayload
		if err := json.Unmarshal(env.Payload, &fp); err != nil {
			return err
		}
		id := fp.Run.ID
		if id == "" {
			id = env.Run
		}
		if id == "" {
			return fmt.Errorf("fleet: findings without a run id")
		}
		if prev, ok := p.byID[id]; ok {
			prev.Duplicates++
			return ErrDuplicateRun
		}
		fp.Run.ID = id
		fp.Run.Project = env.Project
		e := &RunEntry{
			Meta:     fp.Run,
			Counts:   SumCounts(fp.Reports),
			Reports:  fp.Reports,
			Bench:    fp.Bench,
			IngestMs: env.UnixMs,
		}
		p.runs = append(p.runs, e)
		p.byID[id] = e
		if s.cfg.Observer != nil {
			s.cfg.Observer.ObserveRun(env.Tenant, env.Project, e)
		}
		return nil
	case TypeMetrics:
		var mp MetricsPayload
		if err := json.Unmarshal(env.Payload, &mp); err != nil {
			return err
		}
		agent := mp.Agent
		if agent == "" {
			agent = env.Agent
		}
		if agent == "" {
			agent = "unknown"
		}
		mp.Agent = agent
		mp.Project = env.Project
		if prev, ok := p.metrics[agent]; !ok || mp.UnixMs >= prev.payload.UnixMs {
			p.metrics[agent] = &agentMetrics{payload: &mp, recvMs: env.UnixMs}
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.ObserveMetrics(env.Tenant, &mp, env.UnixMs)
		}
		return nil
	case TypeTrace:
		var tp TracePayload
		if err := json.Unmarshal(env.Payload, &tp); err != nil {
			return err
		}
		tp.Meta.Project = env.Project
		p.traces = append(p.traces, tp.Meta)
		return nil
	case TypeSpans:
		var sp SpansPayload
		if err := json.Unmarshal(env.Payload, &sp); err != nil {
			return err
		}
		if err := sp.Validate(); err != nil {
			return err
		}
		sp.Project = env.Project
		// Last write wins per run: a re-shipped snapshot (agent retry)
		// replaces the earlier doc rather than duplicating the trace list.
		if prev, ok := p.spansByRun[sp.Run]; ok {
			delete(p.spansByTrace, prev.TraceID)
			for i, d := range p.spanDocs {
				if d == prev {
					p.spanDocs = append(p.spanDocs[:i], p.spanDocs[i+1:]...)
					break
				}
			}
		}
		p.spanDocs = append(p.spanDocs, &sp)
		p.spansByRun[sp.Run] = &sp
		p.spansByTrace[sp.TraceID] = &sp
		return nil
	default:
		return fmt.Errorf("fleet: unknown record type %q", env.Type)
	}
}

// openSegment starts a fresh active segment (never reusing an existing
// file: a prior crash may have left a torn tail).
func (s *Store) openSegment() error {
	for {
		s.segIndex++
		path := filepath.Join(s.cfg.Dir, segmentName(s.segIndex))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		s.seg = f
		s.segW = io.Writer(f)
		if s.cfg.WrapWriter != nil {
			s.segW = s.cfg.WrapWriter(f)
		}
		s.segBytes = 0
		return nil
	}
}

// appendLocked durably writes one envelope line, rotating on size and
// retrying once on a fresh segment if the active one's writer faults (a
// torn partial line in the abandoned segment is exactly what the salvage
// scan tolerates). Caller holds s.mu.
func (s *Store) appendLocked(env *Envelope, sync bool) error {
	line, err := json.Marshal(env)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if s.segBytes > 0 && s.segBytes+int64(len(line)) > s.cfg.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	wrote, err := s.writeLine(line, sync)
	if err != nil {
		// The active segment's sink is faulting; abandon it (its torn tail
		// is salvage fodder) and retry exactly once on a fresh segment.
		if rerr := s.rotateLocked(); rerr != nil {
			return errors.Join(err, rerr)
		}
		wrote, err = s.writeLine(line, sync)
		if err != nil {
			// The fresh segment faulted too. Abandon it as well — a torn
			// prefix left active would corrupt the next (acked) append that
			// lands after it in the same file.
			if rerr := s.rotateLocked(); rerr != nil {
				return errors.Join(err, rerr)
			}
			return err
		}
	}
	s.segBytes += int64(wrote)
	s.appends++
	return nil
}

// writeLine pushes one line through the (possibly fault-wrapped) writer and
// optionally fsyncs the backing file.
func (s *Store) writeLine(line []byte, sync bool) (int, error) {
	n, err := s.segW.Write(line)
	if err != nil {
		return n, err
	}
	if n < len(line) {
		return n, io.ErrShortWrite
	}
	if sync && !s.cfg.NoSync {
		if err := s.seg.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// rotateLocked closes the active segment and opens the next one, then
// applies segment retention: with RetainSegments set, the oldest fully-acked
// segments beyond the cap are deleted. Only rotation prunes — an idle store
// never loses a file, and the active segment is never a candidate (it is
// always the newest, and the loop stops before it regardless).
func (s *Store) rotateLocked() error {
	if s.seg != nil {
		_ = s.seg.Close()
		s.seg = nil
	}
	if err := s.openSegment(); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// pruneLocked deletes the oldest segments beyond the RetainSegments cap
// (counting the active one). Deletion failures are ignored: retention is
// best-effort housekeeping, and the next rotation retries. Caller holds s.mu.
func (s *Store) pruneLocked() {
	if s.cfg.RetainSegments <= 0 {
		return
	}
	names, err := s.segments()
	if err != nil {
		return
	}
	active := segmentName(s.segIndex)
	excess := len(names) - s.cfg.RetainSegments
	for i := 0; i < excess && i < len(names); i++ {
		if names[i] == active {
			break
		}
		if os.Remove(filepath.Join(s.cfg.Dir, names[i])) == nil {
			s.pruned++
		}
	}
}

// envelope stamps the common fields for an append.
func (s *Store) envelope(typ, tenant, project, agent, run string, payload []byte) *Envelope {
	return &Envelope{
		V:       EnvelopeVersion,
		Type:    typ,
		Tenant:  tenant,
		Project: project,
		Agent:   agent,
		Run:     run,
		Seq:     s.appends,
		UnixMs:  s.cfg.Clock().UnixMilli(),
		CRC:     PayloadCRC(payload),
		Payload: payload,
	}
}

// AppendFindings durably ingests one run. A replayed run ID returns
// ErrDuplicateRun without writing — the original acknowledgment stands.
func (s *Store) AppendFindings(tenant string, fp *FindingsPayload) (*RunEntry, error) {
	payload, err := json.Marshal(fp)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fp.Run.ID == "" {
		return nil, fmt.Errorf("fleet: findings without a run id")
	}
	if fp.Run.Project == "" {
		return nil, fmt.Errorf("fleet: findings without a project")
	}
	p := s.tenant(tenant).project(fp.Run.Project)
	if prev, ok := p.byID[fp.Run.ID]; ok {
		prev.Duplicates++
		return prev, ErrDuplicateRun
	}
	env := s.envelope(TypeFindings, tenant, fp.Run.Project, fp.Run.Agent, fp.Run.ID, payload)
	if err := s.appendLocked(env, true); err != nil {
		return nil, err
	}
	if err := s.apply(env); err != nil {
		return nil, err
	}
	return p.byID[fp.Run.ID], nil
}

// AppendMetrics ingests one metrics snapshot (not individually fsynced:
// telemetry is refreshed continuously and may be lost at a crash).
func (s *Store) AppendMetrics(tenant string, mp *MetricsPayload) error {
	payload, err := json.Marshal(mp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if mp.Project == "" {
		return fmt.Errorf("fleet: metrics without a project")
	}
	env := s.envelope(TypeMetrics, tenant, mp.Project, mp.Agent, mp.Run, payload)
	if err := s.appendLocked(env, false); err != nil {
		return err
	}
	return s.apply(env)
}

// AppendTrace ingests one raw trace segment with its salvage accounting.
func (s *Store) AppendTrace(tenant string, tp *TracePayload) error {
	payload, err := json.Marshal(tp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tp.Meta.Project == "" {
		return fmt.Errorf("fleet: trace without a project")
	}
	env := s.envelope(TypeTrace, tenant, tp.Meta.Project, tp.Meta.Agent, tp.Meta.Run, payload)
	if err := s.appendLocked(env, false); err != nil {
		return err
	}
	return s.apply(env)
}

// AppendSpans ingests one run's span snapshot (not individually fsynced:
// like metrics, spans are observability sidecars, and the agent keeps its
// own copy via -spans-out).
func (s *Store) AppendSpans(tenant string, sp *SpansPayload) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp.Project == "" {
		return fmt.Errorf("fleet: spans without a project")
	}
	env := s.envelope(TypeSpans, tenant, sp.Project, sp.Agent, sp.Run, payload)
	if err := s.appendLocked(env, false); err != nil {
		return err
	}
	return s.apply(env)
}

// Close closes the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// Recovery returns what the opening salvage scan found.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Appends returns how many envelopes this process has durably written.
func (s *Store) Appends() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// PrunedSegments returns how many segment files retention has deleted.
func (s *Store) PrunedSegments() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pruned
}

// Tenants lists every tenant with indexed data, sorted — the iteration
// surface the fleet-wide alert gauges use.
func (s *Store) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.idx))
	for name := range s.idx {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ProjectInfo summarizes one project for /api/v1/projects.
type ProjectInfo struct {
	Project    string `json:"project"`
	Runs       int    `json:"runs"`
	Findings   int    `json:"findings"`
	Agents     int    `json:"agents"`
	Traces     int    `json:"traces"`
	SpanTraces int    `json:"span_traces,omitempty"`
	LastUnixMs int64  `json:"last_unix_ms,omitempty"`
}

// Projects lists a tenant's projects, sorted by name.
func (s *Store) Projects(tenant string) []ProjectInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.idx[tenant]
	if !ok {
		return nil
	}
	out := make([]ProjectInfo, 0, len(t.projects))
	for _, p := range t.projects {
		info := ProjectInfo{
			Project:    p.name,
			Runs:       len(p.runs),
			Agents:     len(p.metrics),
			Traces:     len(p.traces),
			SpanTraces: len(p.spanDocs),
		}
		for _, r := range p.runs {
			info.Findings += r.Counts.Findings
			if r.IngestMs > info.LastUnixMs {
				info.LastUnixMs = r.IngestMs
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Project < out[j].Project })
	return out
}

// RunInfo is one run in /api/v1/runs: meta plus server-side accounting.
type RunInfo struct {
	RunMeta
	Counts     report.Counts `json:"counts"`
	IngestMs   int64         `json:"ingest_unix_ms"`
	Duplicates int           `json:"duplicates,omitempty"`
	HasBench   bool          `json:"has_bench,omitempty"`
}

// runInfo renders one index entry.
func runInfo(e *RunEntry) RunInfo {
	return RunInfo{
		RunMeta:    e.Meta,
		Counts:     e.Counts,
		IngestMs:   e.IngestMs,
		Duplicates: e.Duplicates,
		HasBench:   e.Bench != nil,
	}
}

// Runs returns a project's run history, newest first, capped at n (n <= 0
// means all).
func (s *Store) Runs(tenant, project string, n int) []RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil
	}
	out := make([]RunInfo, 0, len(p.runs))
	for i := len(p.runs) - 1; i >= 0; i-- {
		if n > 0 && len(out) >= n {
			break
		}
		out = append(out, runInfo(p.runs[i]))
	}
	return out
}

// RunHistory returns a project's run entries in ingestion order, oldest
// first (a copied slice over shared entries — the same aliasing contract as
// Run). The alert engine and dashboards read trends from this.
func (s *Store) RunHistory(tenant, project string) []*RunEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil
	}
	return append([]*RunEntry(nil), p.runs...)
}

// lookupProject resolves (tenant, project) to its index, nil if absent.
// Caller holds s.mu.
func (s *Store) lookupProject(tenant, project string) *projectIndex {
	t, ok := s.idx[tenant]
	if !ok {
		return nil
	}
	return t.projects[project]
}

// Run returns one run's full entry (reports included).
func (s *Store) Run(tenant, project, id string) (*RunEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil, ErrUnknownRun
	}
	e, ok := p.byID[id]
	if !ok {
		return nil, ErrUnknownRun
	}
	return e, nil
}

// ProjectFinding is one finding in /api/v1/findings: the wire finding plus
// which run and workload reported it.
type ProjectFinding struct {
	Run      string `json:"run"`
	Workload string `json:"workload"`
	IngestMs int64  `json:"ingest_unix_ms"`
	report.JSONFinding
}

// Findings flattens a project's findings across runs, optionally filtered
// to runs ingested at or after sinceMs. Newest runs first.
func (s *Store) Findings(tenant, project string, sinceMs int64) []ProjectFinding {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil
	}
	var out []ProjectFinding
	for i := len(p.runs) - 1; i >= 0; i-- {
		e := p.runs[i]
		if e.IngestMs < sinceMs {
			continue
		}
		workloads := make([]string, 0, len(e.Reports))
		for w := range e.Reports {
			workloads = append(workloads, w)
		}
		sort.Strings(workloads)
		for _, w := range workloads {
			rep := e.Reports[w]
			for _, f := range rep.Findings {
				out = append(out, ProjectFinding{
					Run: e.Meta.ID, Workload: w, IngestMs: e.IngestMs, JSONFinding: f,
				})
			}
		}
	}
	return out
}

// AgentMetrics returns the latest metrics payloads for a tenant, across all
// projects (project == "") or one project, sorted by project then agent.
func (s *Store) AgentMetrics(tenant, project string) []*MetricsPayload {
	return s.FreshAgentMetrics(tenant, project, time.Time{}, 0)
}

// FreshAgentMetrics is AgentMetrics restricted to agents whose metrics
// stream was still flowing within ttl of now, measured against server-side
// receive time (ttl <= 0 disables the filter). This is what keeps
// /api/v1/hotlines from aggregating agents that died mid-run forever.
func (s *Store) FreshAgentMetrics(tenant, project string, now time.Time, ttl time.Duration) []*MetricsPayload {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.idx[tenant]
	if !ok {
		return nil
	}
	minMs := int64(0)
	if ttl > 0 {
		minMs = now.UnixMilli() - ttl.Milliseconds()
	}
	var out []*MetricsPayload
	for name, p := range t.projects {
		if project != "" && name != project {
			continue
		}
		for _, am := range p.metrics {
			if am.recvMs < minMs {
				continue
			}
			out = append(out, am.payload)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Project != out[j].Project {
			return out[i].Project < out[j].Project
		}
		return out[i].Agent < out[j].Agent
	})
	return out
}

// TraceInfo summarizes one ingested span snapshot for /api/v1/traces: enough
// to list traces and link each to its run without shipping the span bodies.
type TraceInfo struct {
	Project    string `json:"project"`
	Agent      string `json:"agent,omitempty"`
	Tool       string `json:"tool,omitempty"`
	Run        string `json:"run"`
	TraceID    string `json:"trace_id"`
	UnixMs     int64  `json:"unix_ms"`
	Spans      int    `json:"spans"`
	Root       string `json:"root,omitempty"`
	DurationNs int64  `json:"duration_ns,omitempty"`
}

// traceInfo renders one span doc's summary: root name and duration come from
// the first parentless span (by start tick — Snapshot order is preserved on
// the wire).
func traceInfo(sp *SpansPayload) TraceInfo {
	info := TraceInfo{
		Project: sp.Project,
		Agent:   sp.Agent,
		Tool:    sp.Tool,
		Run:     sp.Run,
		TraceID: sp.TraceID,
		UnixMs:  sp.UnixMs,
		Spans:   len(sp.Spans),
	}
	for i := range sp.Spans {
		if sp.Spans[i].Parent == "" {
			info.Root = sp.Spans[i].Name
			info.DurationNs = sp.Spans[i].Duration().Nanoseconds()
			break
		}
	}
	return info
}

// Traces lists a project's ingested span snapshots, newest first, capped at
// n (n <= 0 means all).
func (s *Store) Traces(tenant, project string, n int) []TraceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil
	}
	out := make([]TraceInfo, 0, len(p.spanDocs))
	for i := len(p.spanDocs) - 1; i >= 0; i-- {
		if n > 0 && len(out) >= n {
			break
		}
		out = append(out, traceInfo(p.spanDocs[i]))
	}
	return out
}

// ErrUnknownTrace reports a trace lookup that matched neither a trace ID nor
// a run ID in the project.
var ErrUnknownTrace = errors.New("fleet: unknown trace")

// TraceSpans resolves one span snapshot by trace ID or, failing that, by run
// ID — so a finding's run links straight to its waterfall.
func (s *Store) TraceSpans(tenant, project, id string) (*SpansPayload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return nil, ErrUnknownTrace
	}
	if sp, ok := p.spansByTrace[id]; ok {
		return sp, nil
	}
	if sp, ok := p.spansByRun[id]; ok {
		return sp, nil
	}
	return nil, ErrUnknownTrace
}

// TraceIDForRun resolves a run's ingested span trace ID ("" when the run
// shipped no span snapshot).
func (s *Store) TraceIDForRun(tenant, project, run string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.lookupProject(tenant, project)
	if p == nil {
		return ""
	}
	if sp, ok := p.spansByRun[run]; ok {
		return sp.TraceID
	}
	return ""
}

// AgentStatus is one agent's liveness record: when the server last received
// a metrics snapshot from it.
type AgentStatus struct {
	Project    string `json:"project"`
	Agent      string `json:"agent"`
	Tool       string `json:"tool,omitempty"`
	Run        string `json:"run,omitempty"`
	LastSeenMs int64  `json:"last_seen_unix_ms"`
}

// Agents lists a tenant's agents (all projects when project == ""), stale or
// not, sorted by project then agent — the alert engine's silence feed.
func (s *Store) Agents(tenant, project string) []AgentStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.idx[tenant]
	if !ok {
		return nil
	}
	var out []AgentStatus
	for name, p := range t.projects {
		if project != "" && name != project {
			continue
		}
		for agent, am := range p.metrics {
			out = append(out, AgentStatus{
				Project:    name,
				Agent:      agent,
				Tool:       am.payload.Tool,
				Run:        am.payload.Run,
				LastSeenMs: am.recvMs,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Project != out[j].Project {
			return out[i].Project < out[j].Project
		}
		return out[i].Agent < out[j].Agent
	})
	return out
}
