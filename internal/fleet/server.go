package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"predator/internal/fleet/tsdb"
	"predator/internal/obs"
	"predator/internal/resilience"
	"predator/internal/trace"
)

// DefaultMaxBody bounds ingestion request bodies (8 MiB).
const DefaultMaxBody = 8 << 20

// serverShutdownGrace bounds how long a context-cancelled server waits for
// in-flight requests before closing connections.
const serverShutdownGrace = 5 * time.Second

// ServerConfig configures NewServer.
type ServerConfig struct {
	// Store is the persistent findings store (required).
	Store *Store
	// Tokens maps bearer token -> tenant name. Empty means every request is
	// rejected 401 except when AllowAnonymous names a tenant.
	Tokens map[string]string
	// AllowAnonymous, when non-empty, admits unauthenticated requests as
	// this tenant — local development only.
	AllowAnonymous string
	// Rate/Burst parameterize the per-tenant ingestion token bucket
	// (<= 0 means DefaultRate / DefaultBurst).
	Rate  float64
	Burst int
	// MaxBody bounds ingestion bodies in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// Registry receives predfleet_* metrics (nil = metrics still served,
	// registry created internally).
	Registry *obs.Registry
	// Build identifies the server in /healthz.
	Build obs.BuildInfo
	// Clock substitutes time.Now (tests). Nil means time.Now.
	Clock func() time.Time
	// TSDB, when non-nil, serves /api/v1/series and the dashboard
	// sparklines. Wire the same DB behind the store's Observer so it fills.
	TSDB *tsdb.DB
	// Alerts configures the alert engine (zero values take the defaults);
	// the engine itself is always built from the store.
	Alerts AlertConfig
}

// Server is the predfleet HTTP service: token-authenticated multi-tenant
// ingestion with per-tenant rate limiting, fleet-wide query endpoints, and
// its own health/metrics surfaces. Handlers render into buffers inside
// resilience guards, mirroring the diagnostics server: a panicking endpoint
// answers 500 and is eventually quarantined to 503, but ingestion of other
// tenants keeps flowing.
type Server struct {
	cfg     ServerConfig
	store   *Store
	limiter *RateLimiter
	reg     *obs.Registry
	mux     *http.ServeMux
	guards  map[string]*resilience.Guard
	started time.Time
	tsdb    *tsdb.DB // nil: series/dash sparklines disabled
	alerter *Alerter

	mIngest      *obs.Counter // predfleet_ingest_total
	mIngestErr   *obs.Counter
	mRateLimited *obs.Counter
	mDuplicates  *obs.Counter
	mBytes       *obs.Counter

	srv    *http.Server
	done   chan struct{}
	closed atomic.Bool
}

// NewServer wires the service; Start serves it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: server needs a store")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		limiter: NewRateLimiter(cfg.Rate, cfg.Burst, cfg.Clock),
		reg:     cfg.Registry,
		mux:     http.NewServeMux(),
		guards:  map[string]*resilience.Guard{},
		started: cfg.Clock(),
		tsdb:    cfg.TSDB,
	}
	if cfg.Alerts.Clock == nil {
		cfg.Alerts.Clock = cfg.Clock
	}
	s.alerter = NewAlerter(cfg.Store, cfg.Alerts)
	s.mIngest = s.reg.Counter("predfleet_ingest_total", "Ingestion requests accepted (findings, metrics, trace).")
	s.mIngestErr = s.reg.Counter("predfleet_ingest_errors_total", "Ingestion requests rejected (bad payloads, store faults).")
	s.mRateLimited = s.reg.Counter("predfleet_rate_limited_total", "Ingestion requests shed with 429.")
	s.mDuplicates = s.reg.Counter("predfleet_duplicate_runs_total", "Replayed run IDs acknowledged idempotently.")
	s.mBytes = s.reg.Counter("predfleet_ingest_bytes_total", "Ingestion payload bytes accepted.")
	s.reg.GaugeFunc("predfleet_store_appends", "Envelopes durably appended by this process.",
		func() float64 { return float64(s.store.Appends()) })
	s.reg.GaugeFunc("predfleet_store_recovered_records", "Records recovered from segments at startup.",
		func() float64 { return float64(s.store.Recovery().Records) })
	s.reg.GaugeFunc("predfleet_store_corrupt_lines", "Corrupt segment lines skipped by the startup salvage scan.",
		func() float64 { return float64(s.store.Recovery().CorruptLines) })
	s.reg.GaugeFunc("predfleet_store_pruned_segments", "Fully-acked segments pruned by -retain-segments.",
		func() float64 { return float64(s.store.PrunedSegments()) })
	for _, rule := range []string{RuleFindingDrift, RuleSlowdownRegression, RuleAgentSilent} {
		rule := rule
		s.reg.GaugeFunc("predfleet_alerts_"+rule, "Active "+rule+" alerts across every tenant.",
			func() float64 { return float64(s.alerter.CountByRule()[rule]) })
	}
	if s.tsdb != nil {
		s.reg.GaugeFunc("predfleet_tsdb_appends", "Samples appended to the time-series rings.",
			func() float64 { return float64(s.tsdb.Appends()) })
	}

	s.mux.HandleFunc("/healthz", s.guarded("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.guarded("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/api/v1/ingest/findings", s.ingest(TypeFindings))
	s.mux.HandleFunc("/api/v1/ingest/metrics", s.ingest(TypeMetrics))
	s.mux.HandleFunc("/api/v1/ingest/trace", s.ingest(TypeTrace))
	s.mux.HandleFunc("/api/v1/ingest/spans", s.ingest(TypeSpans))
	s.mux.HandleFunc("/api/v1/traces", s.query("/api/v1/traces", s.handleTraces))
	s.mux.HandleFunc("/api/v1/projects", s.query("/api/v1/projects", s.handleProjects))
	s.mux.HandleFunc("/api/v1/runs", s.query("/api/v1/runs", s.handleRuns))
	s.mux.HandleFunc("/api/v1/findings", s.query("/api/v1/findings", s.handleFindings))
	s.mux.HandleFunc("/api/v1/diff", s.query("/api/v1/diff", s.handleDiff))
	s.mux.HandleFunc("/api/v1/hotlines", s.query("/api/v1/hotlines", s.handleHotLines))
	s.mux.HandleFunc("/api/v1/series", s.query("/api/v1/series", s.handleSeries))
	s.mux.HandleFunc("/api/v1/alerts", s.query("/api/v1/alerts", s.handleAlerts))
	s.mux.HandleFunc("/dash", s.query("/dash", s.handleDashIndex))
	s.mux.HandleFunc("/dash/", s.query("/dash/", s.handleDashProject))
	return s, nil
}

// Handler exposes the routing handler for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 picks a free port) and serves until ctx is
// cancelled or Shutdown is called. Returns the bound address.
func (s *Server) Start(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	if ctx != nil {
		go func() {
			<-ctx.Done()
			sctx, cancel := context.WithTimeout(context.Background(), serverShutdownGrace)
			defer cancel()
			_ = s.Shutdown(sctx)
		}()
	}
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops a started server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil || !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// httpError carries a status code out of a render function.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// tenantOf authenticates a request: Authorization: Bearer <token> (or the
// X-Predfleet-Token header, or ?token= for the browser-loaded dashboard
// pages, which cannot set headers) resolved through the token table.
func (s *Server) tenantOf(r *http.Request) (string, error) {
	tok := r.Header.Get("X-Predfleet-Token")
	if h := r.Header.Get("Authorization"); tok == "" && strings.HasPrefix(h, "Bearer ") {
		tok = strings.TrimPrefix(h, "Bearer ")
	}
	if tok == "" {
		tok = r.URL.Query().Get("token")
	}
	if tok == "" {
		if s.cfg.AllowAnonymous != "" {
			return s.cfg.AllowAnonymous, nil
		}
		return "", &httpError{http.StatusUnauthorized, "missing bearer token"}
	}
	tenant, ok := s.cfg.Tokens[tok]
	if !ok {
		return "", &httpError{http.StatusUnauthorized, "unknown token"}
	}
	return tenant, nil
}

// guarded wraps a buffered render function in a panic guard (the diag
// server's pattern: a panic mid-render yields a clean 500, never a torn
// body; past the panic budget the endpoint is quarantined to 503).
func (s *Server) guarded(name string, render func(r *http.Request, buf *bytes.Buffer) (string, error)) http.HandlerFunc {
	g := resilience.NewGuard("fleet:"+name, resilience.DefaultPanicLimit, nil)
	s.guards[name] = g
	return func(w http.ResponseWriter, r *http.Request) {
		if g.Quarantined() {
			http.Error(w, name+": quarantined after repeated panics", http.StatusServiceUnavailable)
			return
		}
		var buf bytes.Buffer
		var ctype string
		var err error
		if !g.Run(func() { ctype, err = render(r, &buf) }) {
			http.Error(w, name+": handler panicked", http.StatusInternalServerError)
			return
		}
		if err != nil {
			code := http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				code = he.code
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", ctype)
		_, _ = w.Write(buf.Bytes())
	}
}

// query wraps a tenant-scoped read endpoint: auth, then guarded render.
func (s *Server) query(name string, render func(tenant string, r *http.Request, buf *bytes.Buffer) (string, error)) http.HandlerFunc {
	return s.guarded(name, func(r *http.Request, buf *bytes.Buffer) (string, error) {
		tenant, err := s.tenantOf(r)
		if err != nil {
			return "", err
		}
		return render(tenant, r, buf)
	})
}

// ingestAck is the ingestion response body.
type ingestAck struct {
	Status    string `json:"status"` // "ok" | "duplicate"
	Run       string `json:"run,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Events    uint64 `json:"events,omitempty"`  // trace: events salvaged
	Corrupt   uint64 `json:"corrupt,omitempty"` // trace: corrupt regions
}

// ingest builds the handler for one POST /api/v1/ingest/{type} endpoint:
// method check, auth, per-tenant rate limit (429 + Retry-After), body cap
// (413), then type-specific decode and durable append. Acknowledgment (2xx)
// is sent only after the store accepted the record.
func (s *Server) ingest(typ string) http.HandlerFunc {
	name := "/api/v1/ingest/" + typ
	g := resilience.NewGuard("fleet:"+name, resilience.DefaultPanicLimit, nil)
	s.guards[name] = g
	return func(w http.ResponseWriter, r *http.Request) {
		if g.Quarantined() {
			http.Error(w, name+": quarantined after repeated panics", http.StatusServiceUnavailable)
			return
		}
		var code int
		var ack ingestAck
		var herr error
		if !g.Run(func() { code, ack, herr = s.serveIngest(typ, r) }) {
			s.mIngestErr.Inc()
			http.Error(w, name+": handler panicked", http.StatusInternalServerError)
			return
		}
		if herr != nil {
			var he *httpError
			if errors.As(herr, &he) {
				if he.code == http.StatusTooManyRequests {
					w.Header().Set("Retry-After", he.msg)
					http.Error(w, "rate limited", he.code)
					return
				}
				http.Error(w, herr.Error(), he.code)
				return
			}
			http.Error(w, herr.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(ack)
	}
}

// serveIngest performs one ingestion request, returning the HTTP status and
// ack body, or an error carrying the failure status.
func (s *Server) serveIngest(typ string, r *http.Request) (int, ingestAck, error) {
	if r.Method != http.MethodPost {
		return 0, ingestAck{}, &httpError{http.StatusMethodNotAllowed, "POST only"}
	}
	tenant, err := s.tenantOf(r)
	if err != nil {
		return 0, ingestAck{}, err
	}
	if ok, retry := s.limiter.Allow(tenant); !ok {
		s.mRateLimited.Inc()
		secs := int(retry / time.Second)
		if retry%time.Second != 0 {
			secs++
		}
		if secs < 1 {
			secs = 1
		}
		return 0, ingestAck{}, &httpError{http.StatusTooManyRequests, strconv.Itoa(secs)}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		s.mIngestErr.Inc()
		return 0, ingestAck{}, &httpError{http.StatusBadRequest, "reading body: " + err.Error()}
	}
	if int64(len(body)) > s.cfg.MaxBody {
		s.mIngestErr.Inc()
		return 0, ingestAck{}, &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("payload exceeds %d bytes", s.cfg.MaxBody)}
	}
	switch typ {
	case TypeFindings:
		var fp FindingsPayload
		if err := strictUnmarshal(body, &fp); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "bad findings payload: " + err.Error()}
		}
		if fp.Run.Project == "" {
			fp.Run.Project = r.URL.Query().Get("project")
		}
		if fp.Run.ID == "" || fp.Run.Project == "" {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "findings payload needs run.id and run.project"}
		}
		entry, err := s.store.AppendFindings(tenant, &fp)
		switch {
		case errors.Is(err, ErrDuplicateRun):
			s.mDuplicates.Inc()
			return http.StatusOK, ingestAck{Status: "duplicate", Run: entry.Meta.ID, Duplicate: true}, nil
		case err != nil:
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusServiceUnavailable, "store: " + err.Error()}
		}
		s.mIngest.Inc()
		s.mBytes.Add(uint64(len(body)))
		return http.StatusCreated, ingestAck{Status: "ok", Run: entry.Meta.ID}, nil
	case TypeMetrics:
		var mp MetricsPayload
		if err := strictUnmarshal(body, &mp); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "bad metrics payload: " + err.Error()}
		}
		if mp.Project == "" {
			mp.Project = r.URL.Query().Get("project")
		}
		if mp.Project == "" {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "metrics payload needs a project"}
		}
		if err := s.store.AppendMetrics(tenant, &mp); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusServiceUnavailable, "store: " + err.Error()}
		}
		s.mIngest.Inc()
		s.mBytes.Add(uint64(len(body)))
		return http.StatusOK, ingestAck{Status: "ok"}, nil
	case TypeTrace:
		q := r.URL.Query()
		meta := TraceMeta{
			Project: q.Get("project"),
			Run:     q.Get("run"),
			Agent:   q.Get("agent"),
			Bytes:   int64(len(body)),
		}
		if meta.Project == "" {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "trace ingestion needs ?project="}
		}
		// The segment is untrusted: run the trace salvage reader over it at
		// the door, so the stored accounting reflects what is actually
		// decodable and a garbage upload is visible immediately.
		if rd, err := trace.NewSalvageReader(bytes.NewReader(body)); err == nil {
			for {
				if _, err := rd.Next(); err != nil {
					break
				}
			}
			st := rd.Stats()
			meta.Events = st.Events
			meta.CorruptRegions = st.CorruptRegions
			meta.TruncatedTail = st.TruncatedTail
		}
		if err := s.store.AppendTrace(tenant, &TracePayload{Meta: meta, Data: body}); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusServiceUnavailable, "store: " + err.Error()}
		}
		s.mIngest.Inc()
		s.mBytes.Add(uint64(len(body)))
		return http.StatusOK, ingestAck{Status: "ok", Run: meta.Run, Events: meta.Events, Corrupt: meta.CorruptRegions}, nil
	case TypeSpans:
		var sp SpansPayload
		if err := strictUnmarshal(body, &sp); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "bad spans payload: " + err.Error()}
		}
		if sp.Project == "" {
			sp.Project = r.URL.Query().Get("project")
		}
		if sp.Project == "" {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, "spans payload needs a project"}
		}
		if err := sp.Validate(); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		if err := s.store.AppendSpans(tenant, &sp); err != nil {
			s.mIngestErr.Inc()
			return 0, ingestAck{}, &httpError{http.StatusServiceUnavailable, "store: " + err.Error()}
		}
		s.mIngest.Inc()
		s.mBytes.Add(uint64(len(body)))
		return http.StatusOK, ingestAck{Status: "ok", Run: sp.Run}, nil
	default:
		return 0, ingestAck{}, &httpError{http.StatusNotFound, "unknown ingest type"}
	}
}

// strictUnmarshal decodes JSON rejecting trailing garbage (a truncated or
// concatenated body must not half-parse into an empty payload).
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// Health is the /healthz response schema.
type Health struct {
	Status        string        `json:"status"`
	Tool          string        `json:"tool"`
	Version       string        `json:"version"`
	Revision      string        `json:"revision,omitempty"`
	GoVersion     string        `json:"go_version"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Recovery      RecoveryStats `json:"recovery"`
	Appends       uint64        `json:"appends"`
	RateDenied    uint64        `json:"rate_denied"`
	Quarantined   []string      `json:"quarantined,omitempty"`
}

func (s *Server) handleHealthz(_ *http.Request, buf *bytes.Buffer) (string, error) {
	h := Health{
		Status:        "ok",
		Tool:          "predfleet",
		Version:       s.cfg.Build.Version,
		Revision:      s.cfg.Build.ShortRevision(),
		GoVersion:     s.cfg.Build.GoVersion,
		UptimeSeconds: s.cfg.Clock().Sub(s.started).Seconds(),
		Recovery:      s.store.Recovery(),
		Appends:       s.store.Appends(),
		RateDenied:    s.limiter.Denied(),
	}
	for name, g := range s.guards {
		if g.Quarantined() {
			h.Quarantined = append(h.Quarantined, name)
		}
	}
	sort.Strings(h.Quarantined)
	return writeJSON(buf, h)
}

func (s *Server) handleMetrics(_ *http.Request, buf *bytes.Buffer) (string, error) {
	if err := s.reg.WritePrometheus(buf); err != nil {
		return "", err
	}
	return "text/plain; version=0.0.4; charset=utf-8", nil
}

// ProjectsResponse is the /api/v1/projects schema.
type ProjectsResponse struct {
	Tenant   string        `json:"tenant"`
	Count    int           `json:"count"`
	Projects []ProjectInfo `json:"projects"`
}

func (s *Server) handleProjects(tenant string, _ *http.Request, buf *bytes.Buffer) (string, error) {
	projects := s.store.Projects(tenant)
	if projects == nil {
		projects = []ProjectInfo{}
	}
	return writeJSON(buf, ProjectsResponse{Tenant: tenant, Count: len(projects), Projects: projects})
}

// RunsResponse is the /api/v1/runs schema.
type RunsResponse struct {
	Tenant  string    `json:"tenant"`
	Project string    `json:"project"`
	Count   int       `json:"count"`
	Runs    []RunInfo `json:"runs"`
}

func (s *Server) handleRuns(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	q := r.URL.Query()
	project := q.Get("project")
	if project == "" {
		return "", &httpError{http.StatusBadRequest, "missing ?project="}
	}
	n := 0
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return "", &httpError{http.StatusBadRequest, "invalid n: " + raw}
		}
		n = v
	}
	runs := s.store.Runs(tenant, project, n)
	if runs == nil {
		runs = []RunInfo{}
	}
	return writeJSON(buf, RunsResponse{Tenant: tenant, Project: project, Count: len(runs), Runs: runs})
}

// FindingsResponse is the /api/v1/findings schema.
type FindingsResponse struct {
	Tenant   string           `json:"tenant"`
	Project  string           `json:"project"`
	SinceMs  int64            `json:"since_unix_ms,omitempty"`
	Count    int              `json:"count"`
	Findings []ProjectFinding `json:"findings"`
}

func (s *Server) handleFindings(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	q := r.URL.Query()
	project := q.Get("project")
	if project == "" {
		return "", &httpError{http.StatusBadRequest, "missing ?project="}
	}
	var since int64
	if raw := q.Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", &httpError{http.StatusBadRequest, "invalid since (want unix ms): " + raw}
		}
		since = v
	}
	fs := s.store.Findings(tenant, project, since)
	if fs == nil {
		fs = []ProjectFinding{}
	}
	return writeJSON(buf, FindingsResponse{
		Tenant: tenant, Project: project, SinceMs: since, Count: len(fs), Findings: fs,
	})
}

func (s *Server) handleDiff(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	q := r.URL.Query()
	project, baseID, headID := q.Get("project"), q.Get("base"), q.Get("head")
	if project == "" || baseID == "" || headID == "" {
		return "", &httpError{http.StatusBadRequest, "need ?project=&base=&head= (run IDs from /api/v1/runs)"}
	}
	tol := 0.0
	if raw := q.Get("tolerance"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			return "", &httpError{http.StatusBadRequest, "invalid tolerance: " + raw}
		}
		tol = v
	}
	base, err := s.store.Run(tenant, project, baseID)
	if err != nil {
		return "", &httpError{http.StatusNotFound, "base run " + baseID + " not found"}
	}
	head, err := s.store.Run(tenant, project, headID)
	if err != nil {
		return "", &httpError{http.StatusNotFound, "head run " + headID + " not found"}
	}
	delta, err := DiffRuns(project, base, head, tol)
	if err != nil {
		return "", err
	}
	if delta.New == nil {
		delta.New = []FindingRef{}
	}
	if delta.Resolved == nil {
		delta.Resolved = []FindingRef{}
	}
	return writeJSON(buf, delta)
}

// HotLinesResponse is the /api/v1/hotlines schema: the fleet-wide hottest
// lines aggregated across every agent's latest metrics snapshot, tagged
// with their origin. Field names line up with the per-process diagnostics
// server so predtop's shared topview client renders both.
type HotLinesResponse struct {
	Tool      string        `json:"tool"`
	UnixMilli int64         `json:"unix_ms"`
	Requested int           `json:"requested"`
	Count     int           `json:"count"`
	Agents    int           `json:"agents"`
	Stats     StatsSnapshot `json:"stats"`
	Lines     []HotLine     `json:"lines"`
	// Alerts are the tenant's active anomalies pre-rendered one per line
	// (severity-first) — predtop's ALERT row.
	Alerts []string `json:"alerts,omitempty"`
}

// DefaultHotLines is how many lines /api/v1/hotlines returns without ?n=.
const DefaultHotLines = 10

func (s *Server) handleHotLines(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	q := r.URL.Query()
	n := DefaultHotLines
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return "", &httpError{http.StatusBadRequest, "invalid n: " + raw}
		}
		n = v
	}
	// Agents whose metrics stream went silent past the TTL stop
	// contributing: a dead agent's last snapshot must not pin its lines into
	// the fleet view forever.
	snaps := s.store.FreshAgentMetrics(tenant, q.Get("project"), s.cfg.Clock(), s.alerter.AgentTTL())
	resp := HotLinesResponse{
		Tool:      "predfleet",
		UnixMilli: s.cfg.Clock().UnixMilli(),
		Requested: n,
		Agents:    len(snaps),
		Lines:     []HotLine{},
	}
	for _, al := range s.alerter.Alerts(tenant, q.Get("project")) {
		resp.Alerts = append(resp.Alerts, al.String())
	}
	for _, mp := range snaps {
		resp.Stats.Accesses += mp.Stats.Accesses
		resp.Stats.Writes += mp.Stats.Writes
		resp.Stats.TrackedLines += mp.Stats.TrackedLines
		resp.Stats.VirtualLines += mp.Stats.VirtualLines
		resp.Stats.Invalidations += mp.Stats.Invalidations
		resp.Stats.DegradedLines += mp.Stats.DegradedLines
		resp.Stats.Degraded = resp.Stats.Degraded || mp.Stats.Degraded
		resp.Stats.Elided += mp.Stats.Elided
		traceID := ""
		if mp.Run != "" {
			traceID = s.store.TraceIDForRun(tenant, mp.Project, mp.Run)
		}
		for _, ln := range mp.HotLines {
			ln.Project = mp.Project
			ln.Agent = mp.Agent
			ln.Trace = traceID
			resp.Lines = append(resp.Lines, ln)
		}
	}
	sort.Slice(resp.Lines, func(i, j int) bool {
		if resp.Lines[i].Invalidations != resp.Lines[j].Invalidations {
			return resp.Lines[i].Invalidations > resp.Lines[j].Invalidations
		}
		if resp.Lines[i].Agent != resp.Lines[j].Agent {
			return resp.Lines[i].Agent < resp.Lines[j].Agent
		}
		return resp.Lines[i].Addr < resp.Lines[j].Addr
	})
	if n > 0 && len(resp.Lines) > n {
		resp.Lines = resp.Lines[:n]
	}
	resp.Count = len(resp.Lines)
	return writeJSON(buf, resp)
}

// SeriesResponse is the /api/v1/series schema. Without ?name= it lists the
// project's series names; with one it returns that series' buckets at the
// requested resolution (raw | 1m | 1h).
type SeriesResponse struct {
	Tenant     string        `json:"tenant"`
	Project    string        `json:"project"`
	Series     string        `json:"series,omitempty"`
	Resolution string        `json:"resolution,omitempty"`
	SinceMs    int64         `json:"since_unix_ms,omitempty"`
	Names      []string      `json:"names,omitempty"`
	Count      int           `json:"count"`
	Points     []tsdb.Bucket `json:"points,omitempty"`
}

func (s *Server) handleSeries(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	if s.tsdb == nil {
		return "", &httpError{http.StatusServiceUnavailable, "time-series engine disabled"}
	}
	q := r.URL.Query()
	project := q.Get("project")
	if project == "" {
		return "", &httpError{http.StatusBadRequest, "missing ?project="}
	}
	scope := ScopeKey(tenant, project)
	name := q.Get("name")
	if name == "" {
		names := s.tsdb.Series(scope)
		if names == nil {
			names = []string{}
		}
		return writeJSON(buf, SeriesResponse{
			Tenant: tenant, Project: project, Names: names, Count: len(names),
		})
	}
	res := q.Get("res")
	if res == "" {
		res = tsdb.ResRaw
	}
	switch res {
	case tsdb.ResRaw, tsdb.Res1m, tsdb.Res1h:
	default:
		return "", &httpError{http.StatusBadRequest, "invalid res (want raw|1m|1h): " + res}
	}
	var since int64
	if raw := q.Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", &httpError{http.StatusBadRequest, "invalid since (want unix ms): " + raw}
		}
		since = v
	}
	points := s.tsdb.Query(scope, name, res, since)
	if points == nil {
		points = []tsdb.Bucket{}
	}
	return writeJSON(buf, SeriesResponse{
		Tenant: tenant, Project: project, Series: name, Resolution: res,
		SinceMs: since, Count: len(points), Points: points,
	})
}

// TracesResponse is the /api/v1/traces schema. Without ?id= it lists the
// project's ingested span snapshots; with one (a trace ID or a run ID) it
// returns that trace's full span set for the waterfall view.
type TracesResponse struct {
	Tenant  string        `json:"tenant"`
	Project string        `json:"project"`
	Count   int           `json:"count"`
	Traces  []TraceInfo   `json:"traces,omitempty"`
	Trace   *SpansPayload `json:"trace,omitempty"`
}

func (s *Server) handleTraces(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	q := r.URL.Query()
	project := q.Get("project")
	if project == "" {
		return "", &httpError{http.StatusBadRequest, "missing ?project="}
	}
	if id := q.Get("id"); id != "" {
		sp, err := s.store.TraceSpans(tenant, project, id)
		if err != nil {
			return "", &httpError{http.StatusNotFound, "trace " + id + " not found"}
		}
		return writeJSON(buf, TracesResponse{
			Tenant: tenant, Project: project, Count: len(sp.Spans), Trace: sp,
		})
	}
	n := 0
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return "", &httpError{http.StatusBadRequest, "invalid n: " + raw}
		}
		n = v
	}
	traces := s.store.Traces(tenant, project, n)
	if traces == nil {
		traces = []TraceInfo{}
	}
	return writeJSON(buf, TracesResponse{
		Tenant: tenant, Project: project, Count: len(traces), Traces: traces,
	})
}

// AlertsResponse is the /api/v1/alerts schema.
type AlertsResponse struct {
	Tenant  string  `json:"tenant"`
	Project string  `json:"project,omitempty"`
	Count   int     `json:"count"`
	Alerts  []Alert `json:"alerts"`
}

func (s *Server) handleAlerts(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	project := r.URL.Query().Get("project")
	alerts := s.alerter.Alerts(tenant, project)
	if alerts == nil {
		alerts = []Alert{}
	}
	return writeJSON(buf, AlertsResponse{
		Tenant: tenant, Project: project, Count: len(alerts), Alerts: alerts,
	})
}

// writeJSON renders v into buf and returns the JSON content type.
func writeJSON(buf *bytes.Buffer, v any) (string, error) {
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return "", err
	}
	return "application/json; charset=utf-8", nil
}
