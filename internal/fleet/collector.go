package fleet

import (
	"sync"

	"predator/internal/eval"
	"predator/internal/fleet/tsdb"
)

// Series names the Collector records per (tenant, project) scope. Rates are
// derived per agent from consecutive cumulative snapshots; gauges are the
// raw values from each snapshot; run series get one point per ingested run.
const (
	SeriesInvalRate     = "invalidations_per_sec"
	SeriesAccessRate    = "accesses_per_sec"
	SeriesTrackedLines  = "tracked_lines"
	SeriesVirtualLines  = "virtual_lines"
	SeriesDegradedLines = "degraded_lines"
	SeriesFindings      = "findings"
	SeriesFalseSharing  = "false_sharing"
	SeriesSlowdown      = "slowdown_ratio"
	SeriesElideRate     = "elided_per_sec"
)

// ScopeKey is the tsdb project key for one tenant's project: tenants must
// never observe each other's series, so the tenant is part of the key.
func ScopeKey(tenant, project string) string { return tenant + "/" + project }

// Collector folds accepted store records into the time-series DB. It is the
// store Observer predfleet wires up: during the startup salvage scan it
// replays history (rings rebuild crash-safe from the JSONL segments), then
// keeps appending live. Rate series need the previous cumulative counters
// per agent, so the collector keeps a cursor per (tenant, project, agent).
type Collector struct {
	db *tsdb.DB

	mu   sync.Mutex
	last map[string]agentCursor
}

// agentCursor remembers one agent's previous cumulative counters.
type agentCursor struct {
	unixMs        int64
	invalidations uint64
	accesses      uint64
	elided        uint64
}

// NewCollector builds a collector feeding db.
func NewCollector(db *tsdb.DB) *Collector {
	return &Collector{db: db, last: map[string]agentCursor{}}
}

// DB exposes the underlying time-series database (the query side).
func (c *Collector) DB() *tsdb.DB { return c.db }

// ObserveMetrics folds one metrics snapshot: gauge series directly, rate
// series from the delta against the agent's previous snapshot. Counter
// resets (agent restart) skip the rate point instead of recording a negative
// spike. Timestamps are server receive times so replayed history lands on
// the same timeline the live stream uses.
func (c *Collector) ObserveMetrics(tenant string, mp *MetricsPayload, recvMs int64) {
	scope := ScopeKey(tenant, mp.Project)
	c.db.Append(scope, SeriesTrackedLines, recvMs, float64(mp.Stats.TrackedLines))
	c.db.Append(scope, SeriesVirtualLines, recvMs, float64(mp.Stats.VirtualLines))
	c.db.Append(scope, SeriesDegradedLines, recvMs, float64(mp.Stats.DegradedLines))

	key := scope + "\x00" + mp.Agent
	c.mu.Lock()
	prev, ok := c.last[key]
	c.last[key] = agentCursor{
		unixMs:        recvMs,
		invalidations: mp.Stats.Invalidations,
		accesses:      mp.Stats.Accesses,
		elided:        mp.Stats.Elided,
	}
	c.mu.Unlock()
	if !ok || recvMs <= prev.unixMs {
		return
	}
	if mp.Stats.Invalidations < prev.invalidations || mp.Stats.Accesses < prev.accesses ||
		mp.Stats.Elided < prev.elided {
		return // counter reset: the agent restarted between snapshots
	}
	dt := float64(recvMs-prev.unixMs) / 1000.0
	c.db.Append(scope, SeriesInvalRate, recvMs,
		float64(mp.Stats.Invalidations-prev.invalidations)/dt)
	c.db.Append(scope, SeriesAccessRate, recvMs,
		float64(mp.Stats.Accesses-prev.accesses)/dt)
	c.db.Append(scope, SeriesElideRate, recvMs,
		float64(mp.Stats.Elided-prev.elided)/dt)
}

// ObserveRun folds one ingested findings run: per-run counts plus, when the
// run shipped a benchmark document, its overall slowdown ratio.
func (c *Collector) ObserveRun(tenant, project string, e *RunEntry) {
	scope := ScopeKey(tenant, project)
	c.db.Append(scope, SeriesFindings, e.IngestMs, float64(e.Counts.Findings))
	c.db.Append(scope, SeriesFalseSharing, e.IngestMs, float64(e.Counts.FalseSharing))
	if sd, ok := BenchSlowdown(e.Bench); ok {
		c.db.Append(scope, SeriesSlowdown, e.IngestMs, sd)
	}
}

// BenchSlowdown reduces a benchmark document to one number: the mean
// slowdown ratio (instrumented time / Original time, min-of-N preferred,
// matching eval.CompareBench's noise filtering) across every workload × mode
// pair that has an Original denominator. ok is false when the document is
// nil or has no comparable pair.
func BenchSlowdown(doc *eval.BenchDoc) (float64, bool) {
	if doc == nil {
		return 0, false
	}
	pick := func(r eval.BenchRecord) int64 {
		if r.MinNs > 0 {
			return r.MinNs
		}
		return r.MedianNs
	}
	orig := map[string]int64{}
	for _, r := range doc.Records {
		if r.Mode == "Original" {
			orig[r.Workload] = pick(r)
		}
	}
	sum, n := 0.0, 0
	for _, r := range doc.Records {
		if r.Mode == "Original" {
			continue
		}
		o := orig[r.Workload]
		v := pick(r)
		if o <= 0 || v <= 0 {
			continue
		}
		sum += float64(v) / float64(o)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
