package fleet

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"predator/internal/resilience/faultinject"
)

// flakyWriter fails a fraction of writes, sometimes after pushing a partial
// prefix through to the real sink — the torn-line case the salvage scan
// exists for. Deterministic under a seeded source.
type flakyWriter struct {
	w   io.Writer
	rnd interface {
		Float64() float64
		Intn(int) int
	}

	mu       sync.Mutex
	failures int
	partials int
}

var errDiskFault = errors.New("injected disk fault")

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rnd.Float64() < 0.3 {
		f.failures++
		// Half the faults tear the line: a prefix lands on disk first.
		if n := f.rnd.Intn(len(p)); n > 0 && f.rnd.Float64() < 0.5 {
			f.partials++
			if _, err := f.w.Write(p[:n]); err != nil {
				return 0, err
			}
			return n, errDiskFault
		}
		return 0, errDiskFault
	}
	return f.w.Write(p)
}

// TestChaosFleetStoreRecovery hammers the store with concurrent appends while
// a seeded fault injector fails and tears disk writes, then reopens and
// verifies the invariant the ack protocol promises: every acknowledged run
// survives the crash-restart, with the damage accounted for in salvage stats.
func TestChaosFleetStoreRecovery(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			flaky := &flakyWriter{rnd: faultinject.New(seed).Rand()}
			s, err := OpenStore(StoreConfig{
				Dir: dir, NoSync: true, SegmentBytes: 2048,
				// Each segment rotation re-targets the same injector at the
				// new file, so counters and the rng stream span the whole run.
				WrapWriter: func(w io.Writer) io.Writer {
					flaky.mu.Lock()
					defer flaky.mu.Unlock()
					flaky.w = w
					return flaky
				},
			})
			if err != nil {
				t.Fatalf("OpenStore: %v", err)
			}

			const agents, runsPer = 4, 12
			var (
				ackMu sync.Mutex
				acked []string
			)
			var wg sync.WaitGroup
			for a := 0; a < agents; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					for r := 0; r < runsPer; r++ {
						id := fmt.Sprintf("agent%d-run%d", a, r)
						fp := mkRun(id, "db", "mysql",
							finding("counter", "false sharing", "observed", 500))
						fp.Run.Agent = fmt.Sprintf("agent-%d", a)
						if _, err := s.AppendFindings("acme", fp); err == nil {
							ackMu.Lock()
							acked = append(acked, id)
							ackMu.Unlock()
						}
					}
				}(a)
			}
			wg.Wait()
			_ = s.Close() // simulate an unclean exit: no flush beyond what was acked

			flaky.mu.Lock()
			failures, partials := flaky.failures, flaky.partials
			flaky.mu.Unlock()
			if failures == 0 {
				t.Fatalf("seed %d injected no faults; chaos test exercised nothing", seed)
			}
			t.Logf("acked %d/%d runs, %d injected faults (%d torn lines)",
				len(acked), agents*runsPer, failures, partials)

			// Restart with a healthy disk.
			s2 := openTestStore(t, dir)
			rec := s2.Recovery()
			if rec.Records != uint64(len(acked)) {
				t.Fatalf("recovered %d records, want the %d acked (stats %+v)",
					rec.Records, len(acked), rec)
			}
			for _, id := range acked {
				if _, err := s2.Run("acme", "db", id); err != nil {
					t.Fatalf("acked run %s lost after restart: %v", id, err)
				}
			}
			if partials > 0 && rec.TruncatedTails+rec.CorruptLines == 0 {
				t.Fatalf("%d torn lines injected but salvage saw no damage: %+v", partials, rec)
			}

			// Clean-restart recovery: the revived store keeps accepting runs...
			if _, err := s2.AppendFindings("acme", mkRun("post-crash", "db", "mysql",
				finding("counter", "false sharing", "observed", 10))); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := s2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// ...and a third generation sees the union.
			s3 := openTestStore(t, dir)
			defer s3.Close()
			if got := len(s3.Runs("acme", "db", 0)); got != len(acked)+1 {
				t.Fatalf("third open sees %d runs, want %d", got, len(acked)+1)
			}
		})
	}
}
