package fleet

import (
	"bytes"
	"fmt"
	"html"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"predator/internal/fleet/tsdb"
)

// The embedded dashboard: server-rendered HTML with inline SVG sparklines,
// zero external assets (no JavaScript, no CDN, nothing to fetch) so it works
// inside air-gapped CI networks and curl | browser alike. /dash lists the
// tenant's projects; /dash/{project} renders run history, series sparklines,
// active alerts, and the hottest-lines heatmap.

// dashSeries is the fixed card layout of a project page: which series to
// sparkline, in which order, with human titles.
var dashSeries = []struct{ name, title string }{
	{SeriesFindings, "findings per run"},
	{SeriesFalseSharing, "false sharing per run"},
	{SeriesSlowdown, "bench slowdown ratio"},
	{SeriesInvalRate, "invalidations/sec"},
	{SeriesAccessRate, "accesses/sec"},
	{SeriesTrackedLines, "tracked lines"},
	{SeriesDegradedLines, "degraded lines"},
}

// dashHeatmapRuns / dashHeatmapRows bound the hottest-lines heatmap.
const (
	dashHeatmapRuns = 12
	dashHeatmapRows = 10
)

// dashStyle is the whole stylesheet, inlined into every page.
const dashStyle = `
body { font: 14px/1.5 monospace; background: #0e1116; color: #d7dde4; margin: 2em; }
a { color: #6cb6ff; text-decoration: none; }
h1, h2 { font-weight: normal; color: #fff; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { padding: 2px 10px; border-bottom: 1px solid #2a3038; text-align: left; }
th { color: #8b949e; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #2a3038; border-radius: 6px; padding: 8px 12px; }
.card .t { color: #8b949e; }
.card .v { font-size: 18px; color: #fff; }
.alert { padding: 3px 8px; margin: 2px 0; border-left: 4px solid; }
.alert.crit { border-color: #f85149; background: #30171a; }
.alert.warn { border-color: #d29922; background: #2d2410; }
.ok { color: #3fb950; }
.heat td.c { text-align: center; min-width: 2.2em; color: #0e1116; }
.muted { color: #8b949e; }
`

// handleDashIndex renders /dash: one row per project with its vitals and an
// active-alert count, linking into the per-project page.
func (s *Server) handleDashIndex(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	if r.URL.Path != "/dash" {
		return "", &httpError{http.StatusNotFound, "not found (project pages live at /dash/{project})"}
	}
	tok := r.URL.Query().Get("token")
	dashHead(buf, "predfleet — "+tenant)
	fmt.Fprintf(buf, "<h1>predfleet fleet dashboard <span class=muted>tenant %s</span></h1>\n", html.EscapeString(tenant))
	projects := s.store.Projects(tenant)
	if len(projects) == 0 {
		fmt.Fprintln(buf, "<p class=muted>no projects ingested yet</p></body></html>")
		return "text/html; charset=utf-8", nil
	}
	fmt.Fprintln(buf, "<table><tr><th>project</th><th>runs</th><th>findings</th><th>agents</th><th>alerts</th><th>last ingest</th></tr>")
	for _, p := range projects {
		alerts := s.alerter.Alerts(tenant, p.Project)
		cell := "<span class=ok>0</span>"
		if n := len(alerts); n > 0 {
			cls := "warn"
			for _, a := range alerts {
				if a.Severity == SeverityCrit {
					cls = "crit"
					break
				}
			}
			cell = fmt.Sprintf("<span class=\"alert %s\">%d</span>", cls, n)
		}
		fmt.Fprintf(buf, "<tr><td><a href=\"%s\">%s</a></td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
			dashLink("/dash/"+url.PathEscape(p.Project), tok), html.EscapeString(p.Project),
			p.Runs, p.Findings, p.Agents, cell, dashTime(p.LastUnixMs))
	}
	fmt.Fprintln(buf, "</table></body></html>")
	return "text/html; charset=utf-8", nil
}

// handleDashProject renders /dash/{project}: alerts, series sparklines, run
// history, and the hottest-lines heatmap.
func (s *Server) handleDashProject(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	raw := strings.TrimPrefix(r.URL.Path, "/dash/")
	project, err := url.PathUnescape(raw)
	if err != nil || project == "" || strings.Contains(project, "/") {
		return "", &httpError{http.StatusNotFound, "unknown dashboard page"}
	}
	runs := s.store.RunHistory(tenant, project)
	if runs == nil && s.store.AgentMetrics(tenant, project) == nil {
		return "", &httpError{http.StatusNotFound, "project " + project + " has no ingested data"}
	}
	tok := r.URL.Query().Get("token")
	scope := ScopeKey(tenant, project)

	dashHead(buf, "predfleet — "+project)
	fmt.Fprintf(buf, "<h1><a href=\"%s\">predfleet</a> / %s</h1>\n",
		dashLink("/dash", tok), html.EscapeString(project))

	// Active alerts, severity-first (the same order the API serves).
	alerts := s.alerter.Alerts(tenant, project)
	fmt.Fprintln(buf, "<h2>alerts</h2>")
	if len(alerts) == 0 {
		fmt.Fprintln(buf, "<p class=ok>no active alerts</p>")
	}
	for _, a := range alerts {
		fmt.Fprintf(buf, "<div class=\"alert %s\">[%s] %s — %s</div>\n",
			a.Severity, a.Severity, a.Rule, html.EscapeString(a.Message))
	}

	// Series sparkline cards.
	if s.tsdb != nil {
		fmt.Fprintln(buf, "<h2>series</h2><div class=cards>")
		for _, sp := range dashSeries {
			points := s.tsdb.Query(scope, sp.name, tsdb.ResRaw, 0)
			if len(points) == 0 {
				continue
			}
			last := points[len(points)-1]
			fmt.Fprintf(buf, "<div class=card><div class=t>%s</div><div class=v>%s</div>%s</div>\n",
				html.EscapeString(sp.title), dashNum(last.Mean()), svgSparkline(points, 220, 44))
		}
		fmt.Fprintln(buf, "</div>")
	}

	// Run history, newest last so the sparkline reading order matches.
	if len(runs) > 0 {
		fmt.Fprintln(buf, "<h2>run history</h2>")
		fmt.Fprintln(buf, "<table><tr><th>run</th><th>tool</th><th>workload</th><th>findings</th><th>false sharing</th><th>slowdown</th><th>ingested</th></tr>")
		for _, e := range runs {
			sd := "-"
			if v, ok := BenchSlowdown(e.Bench); ok {
				sd = fmt.Sprintf("%.2fx", v)
			}
			fmt.Fprintf(buf, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(e.Meta.ID), html.EscapeString(e.Meta.Tool), html.EscapeString(e.Meta.Workload),
				e.Counts.Findings, e.Counts.FalseSharing, sd, dashTime(e.IngestMs))
		}
		fmt.Fprintln(buf, "</table>")
		dashHeatmap(buf, runs)
	}
	fmt.Fprintln(buf, "</body></html>")
	return "text/html; charset=utf-8", nil
}

// dashHeatmap renders the hottest-lines table: rows are finding keys, one
// column per recent run, cell shade scaled by that run's invalidation count
// for the key — the at-a-glance "which line is hot, and since when" view.
func dashHeatmap(buf *bytes.Buffer, runs []*RunEntry) {
	if len(runs) > dashHeatmapRuns {
		runs = runs[len(runs)-dashHeatmapRuns:]
	}
	// Collect invalidations per (finding key, run column).
	type row struct {
		key   string
		total uint64
		cells []uint64
	}
	byKey := map[string]*row{}
	var max uint64
	for col, e := range runs {
		for workload, rep := range e.Reports {
			for i := range rep.Findings {
				f := &rep.Findings[i]
				k := FindingKey(workload, f)
				rw := byKey[k]
				if rw == nil {
					rw = &row{key: k, cells: make([]uint64, len(runs))}
					byKey[k] = rw
				}
				if f.Invalidations > rw.cells[col] {
					rw.cells[col] = f.Invalidations
				}
				rw.total += f.Invalidations
				if f.Invalidations > max {
					max = f.Invalidations
				}
			}
		}
	}
	if len(byKey) == 0 {
		return
	}
	rows := make([]*row, 0, len(byKey))
	for _, rw := range byKey {
		rows = append(rows, rw)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].key < rows[j].key
	})
	if len(rows) > dashHeatmapRows {
		rows = rows[:dashHeatmapRows]
	}
	fmt.Fprintln(buf, "<h2>hottest lines over run history</h2>")
	fmt.Fprintln(buf, "<table class=heat><tr><th>finding</th>")
	for _, e := range runs {
		fmt.Fprintf(buf, "<th>%s</th>", html.EscapeString(e.Meta.ID))
	}
	fmt.Fprintln(buf, "</tr>")
	for _, rw := range rows {
		fmt.Fprintf(buf, "<tr><td>%s</td>", html.EscapeString(rw.key))
		for _, v := range rw.cells {
			if v == 0 {
				fmt.Fprint(buf, "<td class=c>·</td>")
				continue
			}
			fmt.Fprintf(buf, "<td class=c style=\"background:%s\">%s</td>", heatColor(v, max), dashCount(v))
		}
		fmt.Fprintln(buf, "</tr>")
	}
	fmt.Fprintln(buf, "</table>")
}

// heatColor maps an invalidation count onto a cold-to-hot ramp, log-scaled
// so a 10x hotter line reads one step hotter, not off the chart.
func heatColor(v, max uint64) string {
	frac := 1.0
	if max > 1 {
		frac = math.Log1p(float64(v)) / math.Log1p(float64(max))
	}
	// Ramp #2b6cb0 (cool blue) → #f85149 (hot red).
	lerp := func(a, b int) int { return a + int(frac*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0x2b, 0xf8), lerp(0x6c, 0x51), lerp(0xb0, 0x49))
}

// svgSparkline renders one series as an inline SVG polyline, scaled to fit,
// with a dot on the newest point. Single-point series render the dot alone.
func svgSparkline(points []tsdb.Bucket, w, h int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range points {
		v := b.Mean()
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1 // flat series draws a midline
	}
	pad := 3.0
	x := func(i int) float64 {
		if len(points) == 1 {
			return float64(w) - pad
		}
		return pad + float64(i)/float64(len(points)-1)*(float64(w)-2*pad)
	}
	y := func(v float64) float64 {
		return float64(h) - pad - (v-lo)/span*(float64(h)-2*pad)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg class=spark width="%d" height="%d" viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">`, w, h, w, h)
	if len(points) > 1 {
		sb.WriteString(`<polyline fill="none" stroke="#6cb6ff" stroke-width="1.5" points="`)
		for i, b := range points {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.1f,%.1f", x(i), y(b.Mean()))
		}
		sb.WriteString(`"/>`)
	}
	lastV := points[len(points)-1].Mean()
	fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#f0883e"/>`, x(len(points)-1), y(lastV))
	sb.WriteString(`</svg>`)
	return sb.String()
}

// dashHead opens an HTML document with the inline stylesheet.
func dashHead(buf *bytes.Buffer, title string) {
	fmt.Fprintf(buf, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>\n",
		html.EscapeString(title), dashStyle)
}

// dashLink appends the browser's ?token= so navigation stays authenticated.
func dashLink(path, token string) string {
	if token == "" {
		return path
	}
	return path + "?token=" + url.QueryEscape(token)
}

// dashTime renders a unix-ms stamp, "-" when absent.
func dashTime(ms int64) string {
	if ms == 0 {
		return "-"
	}
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04:05")
}

// dashNum renders a float trimmed of noise digits.
func dashNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// dashCount compresses a counter for a heatmap cell (1.2k, 3.4M).
func dashCount(v uint64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
