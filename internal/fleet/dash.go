package fleet

import (
	"bytes"
	"fmt"
	"html"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"predator/internal/fleet/tsdb"
	"predator/internal/obs/spans"
)

// The embedded dashboard: server-rendered HTML with inline SVG sparklines,
// zero external assets (no JavaScript, no CDN, nothing to fetch) so it works
// inside air-gapped CI networks and curl | browser alike. /dash lists the
// tenant's projects; /dash/{project} renders run history, series sparklines,
// active alerts, and the hottest-lines heatmap.

// dashSeries is the fixed card layout of a project page: which series to
// sparkline, in which order, with human titles.
var dashSeries = []struct{ name, title string }{
	{SeriesFindings, "findings per run"},
	{SeriesFalseSharing, "false sharing per run"},
	{SeriesSlowdown, "bench slowdown ratio"},
	{SeriesInvalRate, "invalidations/sec"},
	{SeriesAccessRate, "accesses/sec"},
	{SeriesElideRate, "elided accesses/sec"},
	{SeriesTrackedLines, "tracked lines"},
	{SeriesDegradedLines, "degraded lines"},
}

// dashHeatmapRuns / dashHeatmapRows bound the hottest-lines heatmap.
const (
	dashHeatmapRuns = 12
	dashHeatmapRows = 10
)

// dashStyle is the whole stylesheet, inlined into every page.
const dashStyle = `
body { font: 14px/1.5 monospace; background: #0e1116; color: #d7dde4; margin: 2em; }
a { color: #6cb6ff; text-decoration: none; }
h1, h2 { font-weight: normal; color: #fff; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { padding: 2px 10px; border-bottom: 1px solid #2a3038; text-align: left; }
th { color: #8b949e; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #2a3038; border-radius: 6px; padding: 8px 12px; }
.card .t { color: #8b949e; }
.card .v { font-size: 18px; color: #fff; }
.alert { padding: 3px 8px; margin: 2px 0; border-left: 4px solid; }
.alert.crit { border-color: #f85149; background: #30171a; }
.alert.warn { border-color: #d29922; background: #2d2410; }
.ok { color: #3fb950; }
.heat td.c { text-align: center; min-width: 2.2em; color: #0e1116; }
.muted { color: #8b949e; }
`

// handleDashIndex renders /dash: one row per project with its vitals and an
// active-alert count, linking into the per-project page.
func (s *Server) handleDashIndex(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	if r.URL.Path != "/dash" {
		return "", &httpError{http.StatusNotFound, "not found (project pages live at /dash/{project})"}
	}
	tok := r.URL.Query().Get("token")
	dashHead(buf, "predfleet — "+tenant)
	fmt.Fprintf(buf, "<h1>predfleet fleet dashboard <span class=muted>tenant %s</span></h1>\n", html.EscapeString(tenant))
	projects := s.store.Projects(tenant)
	if len(projects) == 0 {
		fmt.Fprintln(buf, "<p class=muted>no projects ingested yet</p></body></html>")
		return "text/html; charset=utf-8", nil
	}
	fmt.Fprintln(buf, "<table><tr><th>project</th><th>runs</th><th>findings</th><th>agents</th><th>alerts</th><th>last ingest</th></tr>")
	for _, p := range projects {
		alerts := s.alerter.Alerts(tenant, p.Project)
		cell := "<span class=ok>0</span>"
		if n := len(alerts); n > 0 {
			cls := "warn"
			for _, a := range alerts {
				if a.Severity == SeverityCrit {
					cls = "crit"
					break
				}
			}
			cell = fmt.Sprintf("<span class=\"alert %s\">%d</span>", cls, n)
		}
		fmt.Fprintf(buf, "<tr><td><a href=\"%s\">%s</a></td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
			dashLink("/dash/"+url.PathEscape(p.Project), tok), html.EscapeString(p.Project),
			p.Runs, p.Findings, p.Agents, cell, dashTime(p.LastUnixMs))
	}
	fmt.Fprintln(buf, "</table></body></html>")
	return "text/html; charset=utf-8", nil
}

// handleDashProject renders /dash/{project}: alerts, series sparklines, run
// history, and the hottest-lines heatmap. Trace waterfalls live one level
// down at /dash/{project}/trace/{id} ({id} a trace ID or run ID).
func (s *Server) handleDashProject(tenant string, r *http.Request, buf *bytes.Buffer) (string, error) {
	raw := strings.TrimPrefix(r.URL.Path, "/dash/")
	if parts := strings.Split(raw, "/"); len(parts) == 3 && parts[1] == "trace" {
		project, perr := url.PathUnescape(parts[0])
		id, ierr := url.PathUnescape(parts[2])
		if perr != nil || ierr != nil || project == "" || id == "" {
			return "", &httpError{http.StatusNotFound, "unknown dashboard page"}
		}
		return s.dashTrace(tenant, project, id, r.URL.Query().Get("token"), buf)
	}
	project, err := url.PathUnescape(raw)
	if err != nil || project == "" || strings.Contains(project, "/") {
		return "", &httpError{http.StatusNotFound, "unknown dashboard page"}
	}
	runs := s.store.RunHistory(tenant, project)
	if runs == nil && s.store.AgentMetrics(tenant, project) == nil {
		return "", &httpError{http.StatusNotFound, "project " + project + " has no ingested data"}
	}
	tok := r.URL.Query().Get("token")
	scope := ScopeKey(tenant, project)

	dashHead(buf, "predfleet — "+project)
	fmt.Fprintf(buf, "<h1><a href=\"%s\">predfleet</a> / %s</h1>\n",
		dashLink("/dash", tok), html.EscapeString(project))

	// Active alerts, severity-first (the same order the API serves).
	alerts := s.alerter.Alerts(tenant, project)
	fmt.Fprintln(buf, "<h2>alerts</h2>")
	if len(alerts) == 0 {
		fmt.Fprintln(buf, "<p class=ok>no active alerts</p>")
	}
	for _, a := range alerts {
		fmt.Fprintf(buf, "<div class=\"alert %s\">[%s] %s — %s</div>\n",
			a.Severity, a.Severity, a.Rule, html.EscapeString(a.Message))
	}

	// Series sparkline cards.
	if s.tsdb != nil {
		fmt.Fprintln(buf, "<h2>series</h2><div class=cards>")
		for _, sp := range dashSeries {
			points := s.tsdb.Query(scope, sp.name, tsdb.ResRaw, 0)
			if len(points) == 0 {
				continue
			}
			last := points[len(points)-1]
			fmt.Fprintf(buf, "<div class=card><div class=t>%s</div><div class=v>%s</div>%s</div>\n",
				html.EscapeString(sp.title), dashNum(last.Mean()), svgSparkline(points, 220, 44))
		}
		fmt.Fprintln(buf, "</div>")
	}

	// Run history, newest last so the sparkline reading order matches.
	if len(runs) > 0 {
		fmt.Fprintln(buf, "<h2>run history</h2>")
		fmt.Fprintln(buf, "<table><tr><th>run</th><th>tool</th><th>workload</th><th>findings</th><th>false sharing</th><th>slowdown</th><th>ingested</th></tr>")
		for _, e := range runs {
			sd := "-"
			if v, ok := BenchSlowdown(e.Bench); ok {
				sd = fmt.Sprintf("%.2fx", v)
			}
			fmt.Fprintf(buf, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(e.Meta.ID), html.EscapeString(e.Meta.Tool), html.EscapeString(e.Meta.Workload),
				e.Counts.Findings, e.Counts.FalseSharing, sd, dashTime(e.IngestMs))
		}
		fmt.Fprintln(buf, "</table>")
		dashHeatmap(buf, runs)
	}

	// Span traces: one row per ingested snapshot, linking to the waterfall.
	if traces := s.store.Traces(tenant, project, dashHeatmapRuns); len(traces) > 0 {
		fmt.Fprintln(buf, "<h2>traces</h2>")
		fmt.Fprintln(buf, "<table><tr><th>trace</th><th>run</th><th>agent</th><th>tool</th><th>root</th><th>spans</th><th>duration</th></tr>")
		for _, ti := range traces {
			fmt.Fprintf(buf, "<tr><td><a href=\"%s\">%s</a></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
				dashLink("/dash/"+url.PathEscape(project)+"/trace/"+url.PathEscape(ti.TraceID), tok),
				html.EscapeString(ti.TraceID), html.EscapeString(ti.Run),
				html.EscapeString(ti.Agent), html.EscapeString(ti.Tool),
				html.EscapeString(ti.Root), ti.Spans, dashDuration(ti.DurationNs))
		}
		fmt.Fprintln(buf, "</table>")
	}
	fmt.Fprintln(buf, "</body></html>")
	return "text/html; charset=utf-8", nil
}

// Waterfall layout constants: row height and label gutter in SVG units.
const (
	wfRowH   = 22
	wfGutter = 260
	wfWidth  = 900
	wfMax    = 200 // rows rendered before the view truncates
)

// wfPalette colors waterfall bars by phase family (the prefix before the
// first dot), so every predict.search bar reads the same at a glance.
var wfPalette = map[string]string{
	"harness": "#2b6cb0",
	"eval":    "#6cb6ff",
	"elide":   "#8957e5",
	"sched":   "#8b949e",
	"predict": "#d29922",
	"report":  "#3fb950",
	"replay":  "#f0883e",
}

// dashTrace renders /dash/{project}/trace/{id}: the span waterfall — one bar
// per span positioned on the run's monotonic timeline, nested depth-first
// with children indented under parents in logical-clock order, and each
// span's attribute counters (the overhead attribution) in the label column.
func (s *Server) dashTrace(tenant, project, id, tok string, buf *bytes.Buffer) (string, error) {
	sp, err := s.store.TraceSpans(tenant, project, id)
	if err != nil {
		return "", &httpError{http.StatusNotFound, "trace " + id + " not found in project " + project}
	}
	dashHead(buf, "predfleet — trace "+sp.TraceID)
	fmt.Fprintf(buf, "<h1><a href=\"%s\">predfleet</a> / <a href=\"%s\">%s</a> / trace</h1>\n",
		dashLink("/dash", tok), dashLink("/dash/"+url.PathEscape(project), tok), html.EscapeString(project))
	fmt.Fprintf(buf, "<div class=cards><div class=card><div class=t>trace</div><div class=v>%s</div></div>"+
		"<div class=card><div class=t>run</div><div class=v>%s</div></div>"+
		"<div class=card><div class=t>agent</div><div class=v>%s</div></div>"+
		"<div class=card><div class=t>spans</div><div class=v>%d</div></div></div>\n",
		html.EscapeString(sp.TraceID), html.EscapeString(sp.Run),
		html.EscapeString(sp.Agent), len(sp.Spans))
	wfRender(buf, sp.Spans)
	fmt.Fprintln(buf, "</body></html>")
	return "text/html; charset=utf-8", nil
}

// wfRow is one laid-out waterfall row.
type wfRow struct {
	d     *spans.Data
	depth int
}

// wfRender lays out and draws the waterfall SVG.
func wfRender(buf *bytes.Buffer, data []spans.Data) {
	if len(data) == 0 {
		fmt.Fprintln(buf, "<p class=muted>trace has no spans</p>")
		return
	}
	// Build the tree: children grouped by parent, ordered by start tick (the
	// wire order already is, but re-sorting keeps damaged uploads renderable).
	children := map[string][]*spans.Data{}
	byID := map[string]bool{}
	for i := range data {
		byID[data[i].SpanID] = true
	}
	var roots []*spans.Data
	for i := range data {
		d := &data[i]
		if d.Parent != "" && byID[d.Parent] {
			children[d.Parent] = append(children[d.Parent], d)
		} else {
			roots = append(roots, d)
		}
	}
	less := func(a, b *spans.Data) bool {
		if a.StartTick != b.StartTick {
			return a.StartTick < b.StartTick
		}
		return a.SpanID < b.SpanID
	}
	sort.Slice(roots, func(i, j int) bool { return less(roots[i], roots[j]) })
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return less(kids[i], kids[j]) })
	}
	var rows []wfRow
	var walk func(d *spans.Data, depth int)
	walk = func(d *spans.Data, depth int) {
		rows = append(rows, wfRow{d: d, depth: depth})
		for _, c := range children[d.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, rt := range roots {
		walk(rt, 0)
	}
	truncated := 0
	if len(rows) > wfMax {
		truncated = len(rows) - wfMax
		rows = rows[:wfMax]
	}
	// Timeline bounds over the rendered rows.
	t0, t1 := rows[0].d.StartMonoNano, rows[0].d.EndMonoNano
	for _, rw := range rows {
		if rw.d.StartMonoNano < t0 {
			t0 = rw.d.StartMonoNano
		}
		if rw.d.EndMonoNano > t1 {
			t1 = rw.d.EndMonoNano
		}
	}
	span := float64(t1 - t0)
	if span <= 0 {
		span = 1
	}
	laneW := float64(wfWidth - wfGutter)
	x := func(ns int64) float64 { return float64(wfGutter) + float64(ns-t0)/span*laneW }
	h := len(rows)*wfRowH + 8
	fmt.Fprintln(buf, "<h2>waterfall</h2>")
	fmt.Fprintf(buf, `<svg width="%d" height="%d" viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" font-family="monospace" font-size="12">`+"\n",
		wfWidth, h, wfWidth, h)
	for i, rw := range rows {
		d := rw.d
		y := float64(i*wfRowH + 4)
		color, ok := wfPalette[wfFamily(d.Name)]
		if !ok {
			color = "#6e7681"
		}
		bx0, bx1 := x(d.StartMonoNano), x(d.EndMonoNano)
		if bx1-bx0 < 2 {
			bx1 = bx0 + 2 // a zero-width bar still has to be visible
		}
		fmt.Fprintf(buf, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" rx="2" fill="%s"><title>%s</title></rect>`+"\n",
			bx0, y, bx1-bx0, wfRowH-8, color, html.EscapeString(wfTitle(d)))
		label := strings.Repeat(" ", rw.depth*2) + d.Name
		fmt.Fprintf(buf, `<text x="4" y="%.1f" fill="#d7dde4">%s</text>`+"\n",
			y+float64(wfRowH)/2, html.EscapeString(label))
		fmt.Fprintf(buf, `<text x="%.1f" y="%.1f" fill="#8b949e">%s</text>`+"\n",
			bx1+4, y+float64(wfRowH)/2, html.EscapeString(dashDuration(d.Duration().Nanoseconds())))
	}
	fmt.Fprintln(buf, "</svg>")
	if truncated > 0 {
		fmt.Fprintf(buf, "<p class=muted>%d more spans not shown</p>\n", truncated)
	}
	// Attribute table: the per-span overhead attribution counters.
	fmt.Fprintln(buf, "<h2>span attributes</h2>")
	fmt.Fprintln(buf, "<table><tr><th>span</th><th>labels</th><th>counters</th><th>duration</th></tr>")
	for _, rw := range rows {
		d := rw.d
		fmt.Fprintf(buf, "<tr><td>%s%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			strings.Repeat(" ", rw.depth*2), html.EscapeString(d.Name),
			html.EscapeString(wfKVString(d.Labels)), html.EscapeString(wfCounterString(d.Attrs)),
			dashDuration(d.Duration().Nanoseconds()))
	}
	fmt.Fprintln(buf, "</table>")
}

// wfFamily extracts the span name's phase family ("predict.search" → "predict").
func wfFamily(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// wfTitle renders a bar's hover tooltip.
func wfTitle(d *spans.Data) string {
	parts := []string{d.Name, dashDuration(d.Duration().Nanoseconds())}
	if s := wfKVString(d.Labels); s != "" {
		parts = append(parts, s)
	}
	if s := wfCounterString(d.Attrs); s != "" {
		parts = append(parts, s)
	}
	return strings.Join(parts, " | ")
}

// wfKVString renders string labels "k=v" sorted by key.
func wfKVString(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+m[k])
	}
	return strings.Join(parts, " ")
}

// wfCounterString renders counter attrs "k=v" sorted by key.
func wfCounterString(m map[string]uint64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// dashDuration renders nanoseconds human-readably.
func dashDuration(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// dashHeatmap renders the hottest-lines table: rows are finding keys, one
// column per recent run, cell shade scaled by that run's invalidation count
// for the key — the at-a-glance "which line is hot, and since when" view.
func dashHeatmap(buf *bytes.Buffer, runs []*RunEntry) {
	if len(runs) > dashHeatmapRuns {
		runs = runs[len(runs)-dashHeatmapRuns:]
	}
	// Collect invalidations per (finding key, run column).
	type row struct {
		key   string
		total uint64
		cells []uint64
	}
	byKey := map[string]*row{}
	var max uint64
	for col, e := range runs {
		for workload, rep := range e.Reports {
			for i := range rep.Findings {
				f := &rep.Findings[i]
				k := FindingKey(workload, f)
				rw := byKey[k]
				if rw == nil {
					rw = &row{key: k, cells: make([]uint64, len(runs))}
					byKey[k] = rw
				}
				if f.Invalidations > rw.cells[col] {
					rw.cells[col] = f.Invalidations
				}
				rw.total += f.Invalidations
				if f.Invalidations > max {
					max = f.Invalidations
				}
			}
		}
	}
	if len(byKey) == 0 {
		return
	}
	rows := make([]*row, 0, len(byKey))
	for _, rw := range byKey {
		rows = append(rows, rw)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].key < rows[j].key
	})
	if len(rows) > dashHeatmapRows {
		rows = rows[:dashHeatmapRows]
	}
	fmt.Fprintln(buf, "<h2>hottest lines over run history</h2>")
	fmt.Fprintln(buf, "<table class=heat><tr><th>finding</th>")
	for _, e := range runs {
		fmt.Fprintf(buf, "<th>%s</th>", html.EscapeString(e.Meta.ID))
	}
	fmt.Fprintln(buf, "</tr>")
	for _, rw := range rows {
		fmt.Fprintf(buf, "<tr><td>%s</td>", html.EscapeString(rw.key))
		for _, v := range rw.cells {
			if v == 0 {
				fmt.Fprint(buf, "<td class=c>·</td>")
				continue
			}
			fmt.Fprintf(buf, "<td class=c style=\"background:%s\">%s</td>", heatColor(v, max), dashCount(v))
		}
		fmt.Fprintln(buf, "</tr>")
	}
	fmt.Fprintln(buf, "</table>")
}

// heatColor maps an invalidation count onto a cold-to-hot ramp, log-scaled
// so a 10x hotter line reads one step hotter, not off the chart.
func heatColor(v, max uint64) string {
	frac := 1.0
	if max > 1 {
		frac = math.Log1p(float64(v)) / math.Log1p(float64(max))
	}
	// Ramp #2b6cb0 (cool blue) → #f85149 (hot red).
	lerp := func(a, b int) int { return a + int(frac*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0x2b, 0xf8), lerp(0x6c, 0x51), lerp(0xb0, 0x49))
}

// svgSparkline renders one series as an inline SVG polyline, scaled to fit,
// with a dot on the newest point. Single-point series render the dot alone.
func svgSparkline(points []tsdb.Bucket, w, h int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range points {
		v := b.Mean()
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1 // flat series draws a midline
	}
	pad := 3.0
	x := func(i int) float64 {
		if len(points) == 1 {
			return float64(w) - pad
		}
		return pad + float64(i)/float64(len(points)-1)*(float64(w)-2*pad)
	}
	y := func(v float64) float64 {
		return float64(h) - pad - (v-lo)/span*(float64(h)-2*pad)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg class=spark width="%d" height="%d" viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">`, w, h, w, h)
	if len(points) > 1 {
		sb.WriteString(`<polyline fill="none" stroke="#6cb6ff" stroke-width="1.5" points="`)
		for i, b := range points {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.1f,%.1f", x(i), y(b.Mean()))
		}
		sb.WriteString(`"/>`)
	}
	lastV := points[len(points)-1].Mean()
	fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#f0883e"/>`, x(len(points)-1), y(lastV))
	sb.WriteString(`</svg>`)
	return sb.String()
}

// dashHead opens an HTML document with the inline stylesheet.
func dashHead(buf *bytes.Buffer, title string) {
	fmt.Fprintf(buf, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>\n",
		html.EscapeString(title), dashStyle)
}

// dashLink appends the browser's ?token= so navigation stays authenticated.
func dashLink(path, token string) string {
	if token == "" {
		return path
	}
	return path + "?token=" + url.QueryEscape(token)
}

// dashTime renders a unix-ms stamp, "-" when absent.
func dashTime(ms int64) string {
	if ms == 0 {
		return "-"
	}
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04:05")
}

// dashNum renders a float trimmed of noise digits.
func dashNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// dashCount compresses a counter for a heatmap cell (1.2k, 3.4M).
func dashCount(v uint64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
