package fleet

import (
	"testing"
	"time"

	"predator/internal/fleet/tsdb"
)

// collectorStore opens a store wired to a fresh collector and fake clock.
func collectorStore(t *testing.T, dir string) (*Store, *Collector, *fakeClock) {
	t.Helper()
	fc := newFakeClock()
	col := NewCollector(tsdb.New(tsdb.Config{}))
	s, err := OpenStore(StoreConfig{Dir: dir, NoSync: true, Observer: col, Clock: fc.Now})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s, col, fc
}

func TestCollectorDerivesRatesFromSnapshots(t *testing.T) {
	s, col, fc := collectorStore(t, t.TempDir())
	defer s.Close()
	scope := ScopeKey("acme", "db")

	snap := func(inval, acc uint64) {
		if err := s.AppendMetrics("acme", &MetricsPayload{
			Project: "db", Agent: "agent-1",
			Stats: StatsSnapshot{Invalidations: inval, Accesses: acc, TrackedLines: 3},
		}); err != nil {
			t.Fatalf("AppendMetrics: %v", err)
		}
	}
	snap(100, 1000)
	fc.Advance(2 * time.Second)
	snap(300, 5000) // +200 inval, +4000 accesses over 2s
	fc.Advance(2 * time.Second)
	snap(300, 5000) // flat

	rates := col.DB().Query(scope, SeriesInvalRate, tsdb.ResRaw, 0)
	if len(rates) != 2 {
		t.Fatalf("inval rate points = %+v, want 2", rates)
	}
	if rates[0].Sum != 100 || rates[1].Sum != 0 {
		t.Fatalf("inval rates = %v, %v, want 100, 0", rates[0].Sum, rates[1].Sum)
	}
	acc := col.DB().Query(scope, SeriesAccessRate, tsdb.ResRaw, 0)
	if acc[0].Sum != 2000 {
		t.Fatalf("access rate = %v, want 2000", acc[0].Sum)
	}
	// Gauges got one point per snapshot.
	if tracked := col.DB().Query(scope, SeriesTrackedLines, tsdb.ResRaw, 0); len(tracked) != 3 {
		t.Fatalf("tracked gauge points = %d, want 3", len(tracked))
	}
}

func TestCollectorSkipsCounterResets(t *testing.T) {
	s, col, fc := collectorStore(t, t.TempDir())
	defer s.Close()
	for _, inval := range []uint64{500, 20, 40} { // restart between 500 and 20
		if err := s.AppendMetrics("acme", &MetricsPayload{
			Project: "db", Agent: "agent-1", Stats: StatsSnapshot{Invalidations: inval},
		}); err != nil {
			t.Fatal(err)
		}
		fc.Advance(2 * time.Second)
	}
	rates := col.DB().Query(ScopeKey("acme", "db"), SeriesInvalRate, tsdb.ResRaw, 0)
	if len(rates) != 1 || rates[0].Sum != 10 {
		t.Fatalf("rates across reset = %+v, want one 10/s point", rates)
	}
}

func TestCollectorRunSeriesAndSlowdown(t *testing.T) {
	s, col, fc := collectorStore(t, t.TempDir())
	defer s.Close()
	run := mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 500))
	run.Bench = benchDocFor("mysql", 100, 250, 1) // slowdown 2.5
	if _, err := s.AppendFindings("acme", run); err != nil {
		t.Fatal(err)
	}
	fc.Advance(time.Minute)
	if _, err := s.AppendFindings("acme", mkRun("r2", "db", "mysql")); err != nil {
		t.Fatal(err)
	}

	scope := ScopeKey("acme", "db")
	finds := col.DB().Query(scope, SeriesFindings, tsdb.ResRaw, 0)
	if len(finds) != 2 || finds[0].Sum != 1 || finds[1].Sum != 0 {
		t.Fatalf("findings series = %+v", finds)
	}
	sd := col.DB().Query(scope, SeriesSlowdown, tsdb.ResRaw, 0)
	if len(sd) != 1 || sd[0].Sum != 2.5 {
		t.Fatalf("slowdown series = %+v, want one 2.5 point", sd)
	}
}

// TestCollectorRebuildsFromSegments is the crash-safety contract: a fresh
// collector fed by the reopen salvage scan reconstructs the same series the
// live one accumulated, including derived rates.
func TestCollectorRebuildsFromSegments(t *testing.T) {
	dir := t.TempDir()
	s, col, fc := collectorStore(t, dir)
	for i, inval := range []uint64{100, 300, 600} {
		if err := s.AppendMetrics("acme", &MetricsPayload{
			Project: "db", Agent: "agent-1", Stats: StatsSnapshot{Invalidations: inval},
		}); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			fc.Advance(2 * time.Second)
		}
	}
	run := mkRun("r1", "db", "mysql", finding("counter", "false sharing", "observed", 9))
	run.Bench = benchDocFor("mysql", 100, 300, 1)
	if _, err := s.AppendFindings("acme", run); err != nil {
		t.Fatal(err)
	}
	s.Close()

	col2 := NewCollector(tsdb.New(tsdb.Config{}))
	s2, err := OpenStore(StoreConfig{Dir: dir, NoSync: true, Observer: col2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()

	scope := ScopeKey("acme", "db")
	for _, series := range []string{SeriesInvalRate, SeriesFindings, SeriesSlowdown, SeriesTrackedLines} {
		want := col.DB().Query(scope, series, tsdb.ResRaw, 0)
		got := col2.DB().Query(scope, series, tsdb.ResRaw, 0)
		if len(got) != len(want) {
			t.Fatalf("%s: rebuilt %d points, live had %d", series, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: rebuilt %+v, live %+v", series, i, got[i], want[i])
			}
		}
	}
	if col2.DB().Appends() == 0 {
		t.Fatal("rebuilt DB saw no appends")
	}
}

func TestBenchSlowdown(t *testing.T) {
	if _, ok := BenchSlowdown(nil); ok {
		t.Fatal("nil doc must not produce a slowdown")
	}
	if sd, ok := BenchSlowdown(benchDocFor("w", 100, 420, 0)); !ok || sd != 4.2 {
		t.Fatalf("BenchSlowdown = %v, %v, want 4.2", sd, ok)
	}
	// Without an Original denominator there is nothing to compare.
	doc := benchDocFor("w", 100, 420, 0)
	doc.Records = doc.Records[1:]
	if _, ok := BenchSlowdown(doc); ok {
		t.Fatal("doc without Original must not produce a slowdown")
	}
}
