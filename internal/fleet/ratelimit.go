package fleet

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is a per-tenant token bucket: each tenant gets Burst tokens
// refilled at Rate tokens/second, and every ingestion request spends one.
// An empty bucket answers with how long until the next token — the server
// turns that into 429 + Retry-After. The clock is injectable so tests can
// verify refill behavior without sleeping.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	denied  uint64
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter; rate <= 0 or burst <= 0 fall back to
// permissive defaults (DefaultRate, DefaultBurst). clock nil means time.Now.
func NewRateLimiter(rate float64, burst int, clock func() time.Time) *RateLimiter {
	if rate <= 0 {
		rate = DefaultRate
	}
	if burst <= 0 {
		burst = DefaultBurst
	}
	if clock == nil {
		clock = time.Now
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clock:   clock,
		buckets: map[string]*bucket{},
	}
}

// Rate limiting defaults: generous enough that a handful of agents never
// notice, small enough that a runaway loop is shed.
const (
	DefaultRate  = 50.0
	DefaultBurst = 100
)

// Allow spends one token for the tenant. When the bucket is empty it
// returns false and the wait until one token will be available.
func (rl *RateLimiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	now := rl.clock()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, exists := rl.buckets[tenant]
	if !exists {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(rl.burst, b.tokens+elapsed*rl.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	rl.denied++
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// Denied returns how many requests the limiter has shed.
func (rl *RateLimiter) Denied() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.denied
}
