// Package cachesim is a deterministic multi-core cache simulator: per-core
// private caches kept coherent with a MESI protocol, plus a simple cycle
// cost model. The paper evaluates PREDATOR on real hardware, where false
// sharing manifests as wall-clock slowdowns; this simulator is the
// deterministic stand-in substrate (see DESIGN.md) used to project the
// performance impact of detected/predicted false sharing — the Figure 2
// alignment-sensitivity curve and the Table 1 improvement shapes — on any
// host, independent of the machine the test suite happens to run on.
package cachesim

import (
	"container/list"
	"fmt"

	"predator/internal/cacheline"
)

// State is a MESI coherence state.
type State uint8

// MESI states. Invalid lines are simply absent from the cache.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// CostModel assigns cycle costs to memory events. Defaults approximate a
// small multicore: L1 hit 1 cycle, memory miss 100, coherence invalidation
// adds a 40-cycle penalty to the *writer* (the RFO round trip), and a
// remote-dirty miss costs an extra writeback delay.
type CostModel struct {
	HitCycles        uint64
	MissCycles       uint64
	InvalidateCycles uint64
	WritebackCycles  uint64
	// LLCHitCycles, when positive, enables a shared last-level cache:
	// L1 misses that hit the LLC cost this instead of MissCycles (the
	// evaluation platform had a shared L2; the default model omits it
	// for simplicity, so existing calibrations are unchanged).
	LLCHitCycles uint64
}

// DefaultCostModel returns the default cycle costs.
func DefaultCostModel() CostModel {
	return CostModel{HitCycles: 1, MissCycles: 100, InvalidateCycles: 40, WritebackCycles: 60}
}

// Config configures a simulator.
type Config struct {
	Cores    int // number of cores (private caches); default 8
	LineSize int // cache line size in bytes; default 64
	// LinesPerCache bounds each private cache's capacity in lines (LRU
	// eviction). 0 means unbounded (coherence-only simulation).
	LinesPerCache int
	// LLCLines bounds the shared last-level cache's capacity (LRU).
	// Only meaningful when Cost.LLCHitCycles > 0; 0 means unbounded.
	LLCLines int
	Cost     CostModel // zero value selects DefaultCostModel
}

// Stats aggregates simulator counters.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64 // cold + coherence + capacity
	Invalidations uint64 // lines invalidated in remote caches
	Writebacks    uint64 // dirty lines written back (eviction or remote read)
	Evictions     uint64 // capacity evictions
	LLCHits       uint64 // L1 misses served by the shared LLC
	LLCMisses     uint64 // L1 misses that went to memory
}

// cacheEntry is one resident line in a private cache.
type cacheEntry struct {
	line  uint64
	state State
	lru   *list.Element
}

// cache is one core's private cache.
type cache struct {
	lines  map[uint64]*cacheEntry
	lru    *list.List // front = most recent; values are line numbers
	cap    int
	cycles uint64
}

func newCache(capacity int) *cache {
	return &cache{lines: make(map[uint64]*cacheEntry), lru: list.New(), cap: capacity}
}

func (c *cache) touch(e *cacheEntry) {
	c.lru.MoveToFront(e.lru)
}

func (c *cache) insert(line uint64, st State) *cacheEntry {
	e := &cacheEntry{line: line, state: st}
	e.lru = c.lru.PushFront(line)
	c.lines[line] = e
	return e
}

func (c *cache) remove(e *cacheEntry) {
	c.lru.Remove(e.lru)
	delete(c.lines, e.line)
}

// Sim is a deterministic MESI simulator. It is NOT safe for concurrent use:
// feed it a single interleaved access stream (that is the point — the
// interleaving is the experiment's controlled variable).
type Sim struct {
	cfg     Config
	geom    cacheline.Geometry
	cores   []*cache
	llc     *cache // shared last-level cache; nil when disabled
	stats   Stats
	perLine map[uint64]uint64 // line -> invalidations caused on it
}

// New creates a simulator.
func New(cfg Config) (*Sim, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("cachesim: need at least one core, got %d", cfg.Cores)
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = cacheline.DefaultSize
	}
	geom, err := cacheline.NewGeometry(cfg.LineSize)
	if err != nil {
		return nil, err
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	s := &Sim{
		cfg:     cfg,
		geom:    geom,
		perLine: make(map[uint64]uint64),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, newCache(cfg.LinesPerCache))
	}
	if cfg.Cost.LLCHitCycles > 0 {
		s.llc = newCache(cfg.LLCLines)
	}
	return s, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Sim {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Cores returns the number of simulated cores.
func (s *Sim) Cores() int { return len(s.cores) }

// Geometry returns the simulated line geometry.
func (s *Sim) Geometry() cacheline.Geometry { return s.geom }

// Access simulates one access by the given core. Accesses spanning line
// boundaries are split. Core indices wrap modulo the core count so callers
// can pass thread IDs directly.
func (s *Sim) Access(core int, addr, size uint64, isWrite bool) {
	if size == 0 {
		return
	}
	core = ((core % len(s.cores)) + len(s.cores)) % len(s.cores)
	first := s.geom.Index(addr)
	last := s.geom.Index(addr + size - 1)
	for line := first; line <= last; line++ {
		s.accessLine(core, line, isWrite)
	}
}

// accessLine simulates one access to one line.
func (s *Sim) accessLine(core int, line uint64, isWrite bool) {
	s.stats.Accesses++
	c := s.cores[core]
	e := c.lines[line]

	if e != nil && (isWrite && e.state != Shared || !isWrite) {
		// Hit: M/E for writes (E silently upgrades to M), any for reads.
		s.stats.Hits++
		c.cycles += s.cfg.Cost.HitCycles
		if isWrite {
			e.state = Modified
		}
		c.touch(e)
		return
	}

	if e != nil && isWrite && e.state == Shared {
		// Upgrade miss: invalidate the other sharers.
		s.invalidateOthers(core, line)
		e.state = Modified
		c.touch(e)
		s.stats.Hits++ // data already present; only an upgrade transaction
		c.cycles += s.cfg.Cost.HitCycles + s.cfg.Cost.InvalidateCycles
		return
	}

	// Miss: fill from the shared LLC when present, else from memory.
	s.stats.Misses++
	c.cycles += s.fillCost(line)
	if isWrite {
		// Read-for-ownership: invalidate every other copy.
		if s.invalidateOthers(core, line) {
			c.cycles += s.cfg.Cost.InvalidateCycles
		}
		s.install(core, line, Modified)
		return
	}
	// Read miss: downgrade a remote Modified copy, share with others.
	sharers := false
	for i, other := range s.cores {
		if i == core {
			continue
		}
		if oe := other.lines[line]; oe != nil {
			sharers = true
			if oe.state == Modified {
				s.stats.Writebacks++
				c.cycles += s.cfg.Cost.WritebackCycles
			}
			oe.state = Shared
		}
	}
	if sharers {
		s.install(core, line, Shared)
	} else {
		s.install(core, line, Exclusive)
	}
}

// fillCost charges an L1 miss: an LLC hit when the shared cache holds the
// line, a memory fill otherwise (inserting into the LLC on the way).
func (s *Sim) fillCost(line uint64) uint64 {
	if s.llc == nil {
		return s.cfg.Cost.MissCycles
	}
	if e := s.llc.lines[line]; e != nil {
		s.stats.LLCHits++
		s.llc.touch(e)
		return s.cfg.Cost.LLCHitCycles
	}
	s.stats.LLCMisses++
	if s.llc.cap > 0 && len(s.llc.lines) >= s.llc.cap {
		victim := s.llc.lru.Back()
		s.llc.remove(s.llc.lines[victim.Value.(uint64)])
	}
	s.llc.insert(line, Shared)
	return s.cfg.Cost.MissCycles
}

// invalidateOthers removes all remote copies of a line, counting
// invalidations and writebacks. It reports whether any copy existed.
func (s *Sim) invalidateOthers(core int, line uint64) bool {
	any := false
	for i, other := range s.cores {
		if i == core {
			continue
		}
		if oe := other.lines[line]; oe != nil {
			any = true
			if oe.state == Modified {
				s.stats.Writebacks++
			}
			other.remove(oe)
			s.stats.Invalidations++
			s.perLine[line]++
		}
	}
	return any
}

// install inserts a line into a core's cache, evicting LRU on overflow.
func (s *Sim) install(core int, line uint64, st State) {
	c := s.cores[core]
	if c.cap > 0 && len(c.lines) >= c.cap {
		victim := c.lru.Back()
		ve := c.lines[victim.Value.(uint64)]
		if ve.state == Modified {
			s.stats.Writebacks++
			c.cycles += s.cfg.Cost.WritebackCycles
		}
		c.remove(ve)
		s.stats.Evictions++
	}
	c.insert(line, st)
}

// Stats returns the aggregate counters.
func (s *Sim) Stats() Stats { return s.stats }

// LineInvalidations returns how many invalidations were caused on the line
// containing addr.
func (s *Sim) LineInvalidations(addr uint64) uint64 {
	return s.perLine[s.geom.Index(addr)]
}

// HottestLines returns up to n (line base address, invalidations) pairs with
// the most invalidations, descending.
func (s *Sim) HottestLines(n int) []LineCount {
	out := make([]LineCount, 0, len(s.perLine))
	for line, inv := range s.perLine {
		out = append(out, LineCount{Addr: s.geom.Base(line), Invalidations: inv})
	}
	// Insertion-sort-ish selection is fine at simulation scale.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Invalidations > out[j-1].Invalidations ||
			out[j].Invalidations == out[j-1].Invalidations && out[j].Addr < out[j-1].Addr); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// LineCount pairs a line with its invalidation count.
type LineCount struct {
	Addr          uint64
	Invalidations uint64
}

// CoreCycles returns one core's accumulated cycles.
func (s *Sim) CoreCycles(core int) uint64 { return s.cores[core].cycles }

// ElapsedCycles models the parallel program's runtime: the maximum cycle
// count over all cores (cores run concurrently; the slowest one finishes
// last).
func (s *Sim) ElapsedCycles() uint64 {
	var maxC uint64
	for _, c := range s.cores {
		if c.cycles > maxC {
			maxC = c.cycles
		}
	}
	return maxC
}

// TotalCycles returns the sum of all cores' cycles (aggregate work).
func (s *Sim) TotalCycles() uint64 {
	var sum uint64
	for _, c := range s.cores {
		sum += c.cycles
	}
	return sum
}

// Reset clears all caches and counters, keeping the configuration.
func (s *Sim) Reset() {
	for i := range s.cores {
		s.cores[i] = newCache(s.cfg.LinesPerCache)
	}
	if s.llc != nil {
		s.llc = newCache(s.cfg.LLCLines)
	}
	s.stats = Stats{}
	s.perLine = make(map[uint64]uint64)
}
