package cachesim

import (
	"testing"
	"testing/quick"
)

func sim2(t testing.TB) *Sim {
	t.Helper()
	s, err := New(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cores() != 8 {
		t.Errorf("Cores = %d, want 8", s.Cores())
	}
	if s.Geometry().Size() != 64 {
		t.Errorf("line size = %d", s.Geometry().Size())
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Cores: -1}); err == nil {
		t.Error("negative cores accepted")
	}
	if _, err := New(Config{LineSize: 100}); err == nil {
		t.Error("bad line size accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 8, false)
	s.Access(0, 0x1000, 8, false)
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Invalidations != 0 {
		t.Error("cold traffic caused invalidations")
	}
}

func TestWriteInvalidatesRemoteCopy(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 8, false) // core 0 reads (E)
	s.Access(1, 0x1000, 8, true)  // core 1 writes: invalidate core 0
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// Core 0 rereads: miss again (its copy is gone) and core 1's dirty
	// line is written back and downgraded.
	s.Access(0, 0x1000, 8, false)
	st = s.Stats()
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two cores write disjoint words of one line: every write after the
	// first invalidates the other core's copy.
	s := sim2(t)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		s.Access(0, 0x1000, 8, true)
		s.Access(1, 0x1008, 8, true)
	}
	st := s.Stats()
	if st.Invalidations != 2*rounds-1 {
		t.Errorf("invalidations = %d, want %d", st.Invalidations, 2*rounds-1)
	}
	if got := s.LineInvalidations(0x1000); got != 2*rounds-1 {
		t.Errorf("LineInvalidations = %d", got)
	}
}

func TestPaddedNoPingPong(t *testing.T) {
	// The fixed version: each core writes its own line. Two cold misses,
	// no invalidations — and far fewer cycles.
	s := sim2(t)
	for i := 0; i < 100; i++ {
		s.Access(0, 0x1000, 8, true)
		s.Access(1, 0x1040, 8, true)
	}
	st := s.Stats()
	if st.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", st.Invalidations)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

func TestFixingFalseSharingReducesCycles(t *testing.T) {
	buggy := sim2(t)
	fixed := sim2(t)
	for i := 0; i < 1000; i++ {
		buggy.Access(0, 0x1000, 8, true)
		buggy.Access(1, 0x1008, 8, true)
		fixed.Access(0, 0x1000, 8, true)
		fixed.Access(1, 0x1040, 8, true)
	}
	if buggy.ElapsedCycles() <= 2*fixed.ElapsedCycles() {
		t.Errorf("false sharing cycles %d not clearly above fixed %d",
			buggy.ElapsedCycles(), fixed.ElapsedCycles())
	}
}

func TestSharedReadersNoInvalidations(t *testing.T) {
	s := MustNew(Config{Cores: 4})
	for i := 0; i < 100; i++ {
		for c := 0; c < 4; c++ {
			s.Access(c, 0x2000, 8, false)
		}
	}
	st := s.Stats()
	if st.Invalidations != 0 {
		t.Errorf("read sharing invalidated: %+v", st)
	}
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4 cold", st.Misses)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 8, false)
	s.Access(1, 0x1000, 8, false) // both shared
	s.Access(0, 0x1000, 8, true)  // upgrade: invalidate core 1
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// No new data fetch was needed for the upgrade.
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

func TestSpanningAccessTouchesBothLines(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x103C, 8, true) // crosses 0x1040 boundary
	if st := s.Stats(); st.Accesses != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 line accesses", st)
	}
}

func TestCapacityEviction(t *testing.T) {
	s := MustNew(Config{Cores: 1, LinesPerCache: 4})
	for i := uint64(0); i < 8; i++ {
		s.Access(0, i*64, 8, true)
	}
	st := s.Stats()
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	if st.Writebacks != 4 {
		t.Errorf("writebacks = %d, want 4 (dirty victims)", st.Writebacks)
	}
	// Reaccess the oldest line: capacity miss.
	before := s.Stats().Misses
	s.Access(0, 0, 8, false)
	if s.Stats().Misses != before+1 {
		t.Error("evicted line hit")
	}
}

func TestLRUOrder(t *testing.T) {
	s := MustNew(Config{Cores: 1, LinesPerCache: 2})
	s.Access(0, 0, 8, false)   // A
	s.Access(0, 64, 8, false)  // B
	s.Access(0, 0, 8, false)   // touch A -> LRU victim is B
	s.Access(0, 128, 8, false) // C evicts B
	before := s.Stats().Misses
	s.Access(0, 0, 8, false) // A still resident
	if s.Stats().Misses != before {
		t.Error("LRU evicted the recently used line")
	}
}

func TestCoreWrapping(t *testing.T) {
	s := sim2(t)
	s.Access(2, 0x1000, 8, true)  // wraps to core 0
	s.Access(-1, 0x1040, 8, true) // wraps to core 1
	if s.Stats().Accesses != 2 {
		t.Error("wrapped cores not simulated")
	}
}

func TestHottestLines(t *testing.T) {
	s := sim2(t)
	for i := 0; i < 50; i++ {
		s.Access(0, 0x1000, 8, true)
		s.Access(1, 0x1000, 8, true)
	}
	for i := 0; i < 5; i++ {
		s.Access(0, 0x2000, 8, true)
		s.Access(1, 0x2000, 8, true)
	}
	hot := s.HottestLines(10)
	if len(hot) != 2 {
		t.Fatalf("hottest = %+v", hot)
	}
	if hot[0].Addr != 0x1000 || hot[0].Invalidations <= hot[1].Invalidations {
		t.Errorf("hottest = %+v", hot)
	}
	if got := s.HottestLines(1); len(got) != 1 {
		t.Errorf("truncation failed: %+v", got)
	}
}

func TestElapsedVsTotalCycles(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 8, true)
	s.Access(1, 0x2000, 8, true)
	if s.ElapsedCycles() >= s.TotalCycles() {
		t.Errorf("elapsed %d should be below total %d for balanced work",
			s.ElapsedCycles(), s.TotalCycles())
	}
	if s.CoreCycles(0) == 0 || s.CoreCycles(1) == 0 {
		t.Error("core cycles not accumulated")
	}
}

func TestReset(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 8, true)
	s.Access(1, 0x1000, 8, true)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("stats not reset")
	}
	if s.ElapsedCycles() != 0 {
		t.Error("cycles not reset")
	}
	s.Access(0, 0x1000, 8, false)
	if s.Stats().Misses != 1 {
		t.Error("caches not cleared by reset")
	}
}

func TestZeroSizeIgnored(t *testing.T) {
	s := sim2(t)
	s.Access(0, 0x1000, 0, true)
	if s.Stats().Accesses != 0 {
		t.Error("zero-size access simulated")
	}
}

// Property: invalidations never exceed (cores-1) * writes, and hits+misses
// equals line-accesses.
func TestPropInvariants(t *testing.T) {
	f := func(ops []uint32) bool {
		s := MustNew(Config{Cores: 4})
		writes := uint64(0)
		for _, op := range ops {
			core := int(op % 4)
			addr := uint64(op>>2%64) * 8
			isWrite := op&0x10000 != 0
			if isWrite {
				writes++
			}
			s.Access(core, addr, 8, isWrite)
		}
		st := s.Stats()
		return st.Invalidations <= 3*writes && st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: single-core streams never invalidate and never write back
// (unbounded cache).
func TestPropSingleCoreClean(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustNew(Config{Cores: 1})
		for _, op := range ops {
			s.Access(0, uint64(op%1024)*8, 8, op&0x8000 != 0)
		}
		st := s.Stats()
		return st.Invalidations == 0 && st.Writebacks == 0 && st.Evictions == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	s := MustNew(Config{Cores: 2})
	s.Access(0, 0x1000, 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(0, 0x1000, 8, true)
	}
}

func BenchmarkPingPong(b *testing.B) {
	s := MustNew(Config{Cores: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(i&1, 0x1000+uint64(i&1)*8, 8, true)
	}
}

func llcSim(t testing.TB, llcLines int) *Sim {
	t.Helper()
	cost := DefaultCostModel()
	cost.LLCHitCycles = 20
	return MustNew(Config{Cores: 2, LinesPerCache: 4, LLCLines: llcLines, Cost: cost})
}

func TestLLCServesCapacityMisses(t *testing.T) {
	s := llcSim(t, 0)
	// Touch 8 lines (L1 holds 4): the second pass misses L1 but hits LLC.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 8; i++ {
			s.Access(0, i*64, 8, false)
		}
	}
	st := s.Stats()
	if st.LLCMisses != 8 {
		t.Errorf("LLC misses = %d, want 8 cold", st.LLCMisses)
	}
	if st.LLCHits != 8 {
		t.Errorf("LLC hits = %d, want 8 on the second pass", st.LLCHits)
	}
}

func TestLLCHitsCheaperThanMemory(t *testing.T) {
	withLLC := llcSim(t, 0)
	without := MustNew(Config{Cores: 2, LinesPerCache: 4})
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 8; i++ {
			withLLC.Access(0, i*64, 8, false)
			without.Access(0, i*64, 8, false)
		}
	}
	if withLLC.CoreCycles(0) >= without.CoreCycles(0) {
		t.Errorf("LLC did not reduce cycles: %d vs %d",
			withLLC.CoreCycles(0), without.CoreCycles(0))
	}
}

func TestLLCCapacityEvicts(t *testing.T) {
	s := llcSim(t, 4)
	for i := uint64(0); i < 8; i++ {
		s.Access(0, i*64, 8, false)
	}
	// Line 0 was evicted from the 4-line LLC: a re-access is an LLC miss.
	before := s.Stats().LLCMisses
	s.Access(0, 0, 8, false)
	if s.Stats().LLCMisses != before+1 {
		t.Error("evicted LLC line still hit")
	}
}

func TestLLCDisabledByDefault(t *testing.T) {
	s := MustNew(Config{Cores: 2})
	s.Access(0, 0, 8, false)
	if st := s.Stats(); st.LLCHits != 0 || st.LLCMisses != 0 {
		t.Errorf("LLC counters active while disabled: %+v", st)
	}
}

func TestLLCSurvivesReset(t *testing.T) {
	s := llcSim(t, 0)
	s.Access(0, 0, 8, false)
	s.Reset()
	s.Access(0, 0, 8, false)
	if st := s.Stats(); st.LLCHits != 0 || st.LLCMisses != 1 {
		t.Errorf("Reset did not clear LLC: %+v", st)
	}
}
