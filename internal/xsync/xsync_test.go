package xsync

import (
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedCounterBasics(t *testing.T) {
	var c PaddedCounter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	if got := c.Add(5); got != 5 {
		t.Errorf("Add(5) = %d, want 5", got)
	}
	c.Store(-3)
	if c.Load() != -3 {
		t.Errorf("Load() = %d, want -3", c.Load())
	}
}

func TestPaddedCounterSize(t *testing.T) {
	if sz := unsafe.Sizeof(PaddedCounter{}); sz < 2*CacheLinePad {
		t.Errorf("PaddedCounter size %d smaller than two pads", sz)
	}
}

func TestPaddedCounterConcurrent(t *testing.T) {
	var c PaddedCounter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Errorf("counter = %d, want %d", c.Load(), workers*per)
	}
}

func TestShardedCounterSum(t *testing.T) {
	c := NewShardedCounter(4)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(id, 1)
			}
		}(uint64(i))
	}
	wg.Wait()
	if c.Sum() != workers*per {
		t.Errorf("Sum() = %d, want %d", c.Sum(), workers*per)
	}
}

func TestShardedCounterDefaultShards(t *testing.T) {
	c := NewShardedCounter(0)
	if len(c.shards) == 0 {
		t.Fatal("no shards allocated")
	}
	if len(c.shards)&(len(c.shards)-1) != 0 {
		t.Errorf("shard count %d not a power of two", len(c.shards))
	}
}

func TestSpinlockMutualExclusion(t *testing.T) {
	var lock Spinlock
	counter := 0
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Errorf("counter = %d, want %d (lost updates imply broken lock)", counter, workers*per)
	}
}

func TestSpinlockTryLock(t *testing.T) {
	var lock Spinlock
	if !lock.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if lock.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	lock.Unlock()
	if !lock.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	lock.Unlock()
}

func TestSpinlockUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked Spinlock did not panic")
		}
	}()
	var lock Spinlock
	lock.Unlock()
}

func TestBarrierReleasesAllParties(t *testing.T) {
	const parties = 6
	b := NewBarrier(parties)
	var phase0 [parties]uint64
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phase0[i] = b.Wait()
		}(i)
	}
	wg.Wait()
	for i, p := range phase0 {
		if p != 0 {
			t.Errorf("party %d saw phase %d, want 0", i, p)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	const parties, rounds = 4, 5
	b := NewBarrier(parties)
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if got := b.Wait(); got != uint64(r) {
					t.Errorf("phase = %d, want %d", got, r)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestOnceValue(t *testing.T) {
	var o OnceValue[int]
	calls := 0
	f := func() int { calls++; return 42 }
	if o.Get(f) != 42 || o.Get(f) != 42 {
		t.Error("Get returned wrong value")
	}
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
}
