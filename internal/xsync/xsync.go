// Package xsync provides small concurrency utilities used across the
// PREDATOR runtime and its workloads: cache-line padded counters (the very
// fix the paper recommends for false sharing), sharded counters, a spinlock,
// and a reusable barrier. All types are safe for concurrent use.
package xsync

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CacheLinePad is the padding unit used to keep adjacent hot fields on
// distinct cache lines. 64 bytes matches common x86-64 hardware; padded
// types additionally pad to 128 bytes to defeat adjacent-line prefetchers.
const CacheLinePad = 64

// PaddedCounter is an int64 counter alone on its own cache line(s), so
// concurrent increments from different goroutines never falsely share.
type PaddedCounter struct {
	_ [CacheLinePad]byte
	v atomic.Int64
	_ [CacheLinePad - 8]byte
}

// Add atomically adds delta and returns the new value.
func (c *PaddedCounter) Add(delta int64) int64 { return c.v.Add(delta) }

// Load returns the current value.
func (c *PaddedCounter) Load() int64 { return c.v.Load() }

// Store sets the value.
func (c *PaddedCounter) Store(v int64) { c.v.Store(v) }

// ShardedCounter spreads increments over per-shard padded slots to avoid
// contention, at the cost of an O(shards) Sum.
type ShardedCounter struct {
	shards []PaddedCounter
	mask   uint64
}

// NewShardedCounter returns a counter with the given number of shards,
// rounded up to a power of two. shards <= 0 selects GOMAXPROCS.
func NewShardedCounter(shards int) *ShardedCounter {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &ShardedCounter{shards: make([]PaddedCounter, n), mask: uint64(n - 1)}
}

// Add adds delta to the shard selected by key (callers typically pass a
// thread or goroutine-local identifier).
func (c *ShardedCounter) Add(key uint64, delta int64) {
	c.shards[key&c.mask].Add(delta)
}

// Sum returns the sum over all shards. The result is a consistent snapshot
// only when no concurrent writers are active.
func (c *ShardedCounter) Sum() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].Load()
	}
	return total
}

// Spinlock is a test-and-set spinlock. It exists both as a substrate
// utility and as the structural analog of the Boost spinlock pool whose
// false sharing the paper diagnoses (§4.1.2); the apps workload embeds
// unpadded Spinlocks in an array to reproduce that bug.
type Spinlock struct {
	state atomic.Uint32
}

// Lock acquires the spinlock, yielding the processor between attempts.
func (s *Spinlock) Lock() {
	for !s.state.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock attempts to acquire the lock without spinning.
func (s *Spinlock) TryLock() bool { return s.state.CompareAndSwap(0, 1) }

// Unlock releases the spinlock. Unlocking an unlocked Spinlock panics.
func (s *Spinlock) Unlock() {
	if s.state.Swap(0) != 1 {
		panic("xsync: unlock of unlocked Spinlock")
	}
}

// Barrier is a reusable N-party barrier: each Wait blocks until all parties
// have arrived, then all are released and the barrier resets.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier returns a barrier for the given positive number of parties.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("xsync: barrier parties must be positive")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// It returns the phase number that just completed, starting at 0.
func (b *Barrier) Wait() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return phase
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	return phase
}

// OnceValue caches the first result of fn; later calls return the cached
// value. It is a tiny generic convenience over sync.Once.
type OnceValue[T any] struct {
	once sync.Once
	v    T
}

// Get returns the cached value, computing it with fn on first use.
func (o *OnceValue[T]) Get(fn func() T) T {
	o.once.Do(func() { o.v = fn() })
	return o.v
}
