package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"

	"predator/internal/callsite"
	"predator/internal/core"
	"predator/internal/instr"
	"predator/internal/mem"
)

func testHeader() Header {
	return Header{HeapBase: 0x400000000, HeapSize: 4 << 20, LineSize: 64}
}

func TestRoundTripAllOps(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Op: OpThread, TID: 0, Name: "main"},
		{Op: OpAlloc, TID: 0, Addr: 0x400000040, Size: 128},
		{Op: OpWrite, TID: 0, Addr: 0x400000040, Size: 8},
		{Op: OpRead, TID: 1, Addr: 0x400000048, Size: 4},
		{Op: OpGlobal, Addr: 0x400010000, Size: 64, Name: "counters"},
		{Op: OpFree, Addr: 0x400000040},
	}
	for _, e := range events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != uint64(len(events)) {
		t.Errorf("Events = %d", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != testHeader() {
		t.Errorf("header = %+v", r.Header())
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Errorf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACEFILE-------")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteEvent(Event{Op: OpWrite, TID: 1, Addr: 0x400000040, Size: 8})
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated event decoded without error")
	}
}

func TestUnknownOp(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.Flush()
	buf.WriteByte(0xEE)
	r, _ := NewReader(&buf)
	if _, err := r.Next(); err == nil {
		t.Error("unknown op decoded")
	}
}

func TestWriterAsSink(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.HandleAccess(3, 0x400000100, 8, true)
	w.HandleAccess(4, 0x400000108, 2, false)
	w.Flush()
	r, _ := NewReader(&buf)
	e1, _ := r.Next()
	e2, _ := r.Next()
	if e1.Op != OpWrite || e1.TID != 3 || e1.Size != 8 {
		t.Errorf("e1 = %+v", e1)
	}
	if e2.Op != OpRead || e2.TID != 4 || e2.Size != 2 {
		t.Errorf("e2 = %+v", e2)
	}
}

func TestConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	var wg sync.WaitGroup
	const workers, per = 4, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				w.HandleAccess(tid, 0x400000000+uint64(j*8), 8, true)
			}
		}(i)
	}
	wg.Wait()
	w.Flush()
	r, _ := NewReader(&buf)
	count := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != workers*per {
		t.Errorf("decoded %d events, want %d", count, workers*per)
	}
}

// record runs a small false-sharing workload while teeing accesses into a
// trace, returning the encoded trace.
func record(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	h, err := mem.NewHeap(mem.Config{Base: 0x400000000, Size: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rh := &RecordingHeap{Heap: h, W: w}
	in := instr.New(h, w, instr.Policy{})
	t1, t2 := in.NewThread("a"), in.NewThread("b")
	w.WriteEvent(Event{Op: OpThread, TID: 0, Name: "a"})
	w.WriteEvent(Event{Op: OpThread, TID: 1, Name: "b"})
	addr, err := rh.Alloc(t1.ID(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		t1.Store64(addr, uint64(i))
		t2.Store64(addr+8, uint64(i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func replayConfig() core.Config {
	return core.Config{
		TrackingThreshold:   10,
		PredictionThreshold: 20,
		ReportThreshold:     50,
		Prediction:          true,
	}
}

func TestReplayDetectsRecordedFalseSharing(t *testing.T) {
	buf := record(t)
	res, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.FalseSharing()) == 0 {
		t.Fatal("replay missed recorded false sharing")
	}
	if res.Threads[0] != "a" || res.Threads[1] != "b" {
		t.Errorf("threads = %v", res.Threads)
	}
	if res.Events == 0 {
		t.Error("no events replayed")
	}
	// The replayed finding resolves to the recorded allocation.
	f := res.Report.FalseSharing()[0]
	if _, ok := f.PrimaryObject(); !ok {
		t.Error("replayed finding lost object attribution")
	}
}

func TestReplayDeterministic(t *testing.T) {
	buf := record(t)
	a, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Findings) != len(b.Report.Findings) {
		t.Fatal("replays disagree on finding count")
	}
	for i := range a.Report.Findings {
		fa, fb := a.Report.Findings[i], b.Report.Findings[i]
		if fa.Invalidations != fb.Invalidations || fa.Span != fb.Span {
			t.Errorf("finding %d differs: %d/%v vs %d/%v",
				i, fa.Invalidations, fa.Span, fb.Invalidations, fb.Span)
		}
	}
}

func TestReplayWithDifferentConfig(t *testing.T) {
	buf := record(t)
	// Impossibly high report threshold: same trace, no findings.
	cfg := replayConfig()
	cfg.ReportThreshold = 1 << 40
	res, err := Replay(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Findings) != 0 {
		t.Error("threshold ignored on replay")
	}
}

func TestReplayRejectsCorruptAlloc(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteEvent(Event{Op: OpAlloc, TID: 0, Addr: 0x10, Size: 64}) // outside heap
	w.Flush()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig()); err == nil {
		t.Error("out-of-heap alloc replayed without error")
	}
}

func TestTeeFansOut(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	h, _ := mem.NewHeap(mem.Config{Size: 1 << 20})
	rt, _ := core.NewRuntime(h, replayConfig())
	tee := Tee{rt, w}
	tee.HandleAccess(0, h.Base(), 8, true)
	w.Flush()
	if rt.Stats().Accesses != 1 {
		t.Error("runtime missed teed access")
	}
	r, _ := NewReader(&buf)
	if e, err := r.Next(); err != nil || e.Op != OpWrite {
		t.Errorf("trace missed teed access: %+v, %v", e, err)
	}
}

func BenchmarkWriteEvent(b *testing.B) {
	w, _ := NewWriter(io.Discard, testHeader())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.HandleAccess(i&3, 0x400000000+uint64(i&1023)*8, 8, i&1 == 0)
	}
}

// TestRecordReplayParity is the fidelity contract: one live run teed into a
// trace must replay to the same core.Stats and the same findings the live
// runtime produced. Frees are part of the contract — the runtime recycles
// line metadata on free, so a trace missing OpFree events would diverge.
func TestRecordReplayParity(t *testing.T) {
	const base, size = uint64(0x400000000), uint64(4 << 20)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{HeapBase: base, HeapSize: size, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mem.NewHeap(mem.Config{Base: base, Size: size})
	if err != nil {
		t.Fatal(err)
	}
	Mirror(h, w)
	cfg := replayConfig()
	rt, err := core.NewRuntime(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := instr.New(h, Tee{rt, w}, instr.Policy{})
	t1, t2 := in.NewThread("a"), in.NewThread("b")

	// Falsely-shared object: two threads hammer adjacent words.
	shared, err := h.Alloc(t1.ID(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tracked-then-freed object: crosses the tracking threshold, then is
	// freed so its line metadata is recycled — the OpFree-sensitive path.
	scratch, err := h.Alloc(t2.ID(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		t1.Store64(shared, uint64(i))
		t2.Store64(shared+8, uint64(i))
		t1.Store64(scratch, uint64(i))
	}
	if err := h.Free(scratch); err != nil {
		t.Fatal(err)
	}
	// Post-free traffic on the shared line keeps accumulating.
	for i := 0; i < 100; i++ {
		t1.Store64(shared, uint64(i))
		t2.Store64(shared+8, uint64(i))
	}
	liveStats := rt.Stats()
	liveReport := rt.Report()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != liveStats {
		t.Errorf("stats diverge:\n live:   %+v\n replay: %+v", liveStats, res.Stats)
	}
	if got, want := len(res.Report.Findings), len(liveReport.Findings); got != want {
		t.Fatalf("finding count: replay %d, live %d", got, want)
	}
	for i := range liveReport.Findings {
		lf, rf := liveReport.Findings[i], res.Report.Findings[i]
		if lf.Source != rf.Source || lf.Sharing != rf.Sharing || lf.Span != rf.Span ||
			lf.Accesses != rf.Accesses || lf.Reads != rf.Reads || lf.Writes != rf.Writes ||
			lf.Invalidations != rf.Invalidations || lf.Estimate != rf.Estimate {
			t.Errorf("finding %d diverges:\n live:   %+v\n replay: %+v", i, lf, rf)
		}
		if !reflect.DeepEqual(lf.Words, rf.Words) {
			t.Errorf("finding %d words diverge", i)
		}
		if len(lf.Objects) != len(rf.Objects) {
			t.Errorf("finding %d object count: live %d, replay %d", i, len(lf.Objects), len(rf.Objects))
			continue
		}
		for j := range lf.Objects {
			lo, ro := lf.Objects[j], rf.Objects[j]
			// Callsites are not recorded in traces; everything else must match.
			lo.Callsite, ro.Callsite = callsite.Stack{}, callsite.Stack{}
			if !reflect.DeepEqual(lo, ro) {
				t.Errorf("finding %d object %d diverges:\n live:   %+v\n replay: %+v", i, j, lo, ro)
			}
		}
	}
}
