package trace

import (
	"fmt"
	"io"

	"predator/internal/core"
	"predator/internal/elide"
	"predator/internal/mem"
	"predator/internal/obs/spans"
	"predator/internal/report"
)

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Events  uint64
	Threads map[int]string
	Report  *report.Report
	Stats   core.Stats
	// Salvage accounts what a salvage-mode replay skipped or repaired;
	// nil when the replay ran strict.
	Salvage *SalvageStats
	// SemanticErrors counts events that decoded cleanly but were rejected
	// by the rebuilt heap (overlapping allocations, unknown frees) and
	// tolerated in salvage mode. Always 0 on a strict replay, which aborts
	// on the first such error instead.
	SemanticErrors uint64
	// Elided counts access events dropped by the static elision fast path
	// (zero without ReplayOptions.Elide).
	Elided uint64
}

// ReplayOptions selects replay behavior beyond the runtime configuration.
type ReplayOptions struct {
	// Salvage replays through a salvage-mode reader: malformed or truncated
	// records are skipped (accounted in ReplayResult.Salvage) and semantic
	// heap errors are counted instead of aborting, so a damaged trace still
	// yields a report.
	Salvage bool
	// OnRuntime, when non-nil, receives the replay runtime right after
	// construction, before any event streams through it. The live
	// diagnostics server uses it to attach the runtime as its scrape
	// source.
	OnRuntime func(*core.Runtime)
	// Elide, when non-nil, is a predlint elision manifest. Replay bypasses
	// the instrumentation front-end, so the binder filters access events
	// here, before they reach the runtime — with the same margin rule the
	// harness applies, so elision never changes the replay's counts.
	Elide *elide.Manifest
	// Span, when non-nil, is the parent span the replay's pipeline spans
	// (replay.decode, report.collect) nest under. The tracer rides on
	// cfg.Observer (obs.SetSpans); without one every span call no-ops.
	Span *spans.Span
}

// Replay streams a trace through a fresh PREDATOR runtime configured with
// cfg, rebuilding the recorded heap's object table, and returns the report.
// Replay is deterministic: the same trace and configuration always produce
// the same invalidation counts and findings.
func Replay(r io.Reader, cfg core.Config) (*ReplayResult, error) {
	return ReplayWithOptions(r, cfg, ReplayOptions{})
}

// ReplayWithOptions is Replay with explicit resilience options.
func ReplayWithOptions(r io.Reader, cfg core.Config, opts ReplayOptions) (*ReplayResult, error) {
	var tr *Reader
	var err error
	if opts.Salvage {
		tr, err = NewSalvageReader(r)
	} else {
		tr, err = NewReader(r)
	}
	if err != nil {
		return nil, err
	}
	hdr := tr.Header()
	h, err := mem.NewHeap(mem.Config{
		Base:     hdr.HeapBase,
		Size:     hdr.HeapSize,
		LineSize: int(hdr.LineSize),
	})
	if err != nil && opts.Salvage {
		// The header decoded but describes an unbuildable heap (e.g. a
		// bit-flipped size). Fall back to the default geometry; accesses
		// outside it are ignored by the runtime's range check.
		tr.stats.HeaderDamaged = true
		hdr = defaultHeader()
		h, err = mem.NewHeap(mem.Config{
			Base:     hdr.HeapBase,
			Size:     hdr.HeapSize,
			LineSize: int(hdr.LineSize),
		})
	}
	if err != nil {
		return nil, fmt.Errorf("trace: rebuilding heap: %w", err)
	}
	// Observe the rebuilt heap before streaming events, so a replayed run
	// produces the same allocation telemetry as the live run it recorded.
	h.Observe(cfg.Observer)
	tracer := cfg.Observer.Spans()
	var binder *elide.Binder
	if opts.Elide != nil {
		esp := tracer.Start("elide.bind", opts.Span)
		esp.SetAttr("entries", uint64(len(opts.Elide.Entries)))
		binder, err = elide.NewBinder(opts.Elide, h.Geometry(), elideMargin(cfg))
		if err != nil {
			esp.End()
			return nil, fmt.Errorf("trace: elision manifest: %w", err)
		}
		// Attach before any OpAlloc/OpGlobal streams in: the heap hooks
		// bind manifest entries to objects as the replay rebuilds them.
		binder.Attach(h)
		esp.SetAttr("margin_lines", uint64(elideMargin(cfg)))
		esp.End()
	}
	rt, err := core.NewRuntime(h, cfg)
	if err != nil {
		return nil, err
	}
	if opts.OnRuntime != nil {
		opts.OnRuntime(rt)
	}
	// The decode span covers the event loop (salvage included): detector
	// spans minted while events stream (predict.search) nest under it.
	dsp := tracer.Start("replay.decode", opts.Span)
	if opts.Salvage {
		dsp.SetLabel("salvage", "on")
	}
	rt.SetSpan(dsp)
	defer dsp.End() // idempotent: the success path ends it before the report
	res := &ReplayResult{Threads: make(map[int]string)}
	for {
		e, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Events++
		switch e.Op {
		case OpRead:
			if binder != nil && binder.Elidable(e.Addr, e.Size, false) {
				res.Elided++
				continue
			}
			rt.HandleAccess(int(e.TID), e.Addr, e.Size, false)
		case OpWrite:
			if binder != nil && binder.Elidable(e.Addr, e.Size, true) {
				res.Elided++
				continue
			}
			rt.HandleAccess(int(e.TID), e.Addr, e.Size, true)
		case OpAlloc:
			if err := h.ImportObject(mem.Object{Start: e.Addr, Size: e.Size, Thread: int(e.TID)}); err != nil {
				if opts.Salvage {
					res.SemanticErrors++
					continue
				}
				return nil, fmt.Errorf("trace: event %d (byte offset %d): %w", res.Events-1, tr.Offset(), err)
			}
		case OpFree:
			if err := h.Free(e.Addr); err != nil {
				if opts.Salvage {
					res.SemanticErrors++
					continue
				}
				return nil, fmt.Errorf("trace: event %d (byte offset %d): %w", res.Events-1, tr.Offset(), err)
			}
		case OpGlobal:
			if err := h.ImportObject(mem.Object{Start: e.Addr, Size: e.Size, Thread: -1, Label: e.Name, Global: true}); err != nil {
				if opts.Salvage {
					res.SemanticErrors++
					continue
				}
				return nil, fmt.Errorf("trace: event %d (byte offset %d): %w", res.Events-1, tr.Offset(), err)
			}
		case OpThread:
			res.Threads[int(e.TID)] = e.Name
		}
	}
	dsp.SetAttr("events", res.Events)
	dsp.SetAttr("elided", res.Elided)
	dsp.SetAttr("semantic_errors", res.SemanticErrors)
	dsp.End()
	rt.SetSpan(opts.Span)
	res.Report = rt.Report()
	res.Stats = rt.Stats()
	if opts.Salvage {
		stats := tr.Stats()
		res.Salvage = &stats
	}
	return res, nil
}

// elideMargin sizes the elision binder's keep-out margin in lines: the
// largest prediction fusion factor minus one (mirroring the harness), so an
// elided access can never share a physical or predicted virtual line with a
// neighboring object.
func elideMargin(cfg core.Config) int {
	factors := cfg.LineSizeFactors
	if len(factors) == 0 {
		factors = []int{2}
	}
	max := 1
	for _, f := range factors {
		if f > max {
			max = f
		}
	}
	return max - 1
}

// Mirror subscribes a trace Writer to the heap's lifecycle hooks so every
// allocation, global registration, and free is recorded alongside the access
// stream. Frees matter for fidelity: the runtime recycles line metadata on
// free, so a trace without OpFree events replays to different stats than the
// live run that produced it. Install before the workload allocates; the
// heap's multi-subscriber hooks let a detection runtime coexist on the same
// heap.
func Mirror(h *mem.Heap, w *Writer) {
	h.AddAllocHook(func(o mem.Object) {
		op := OpAlloc
		name := ""
		if o.Global {
			op = OpGlobal
			name = o.Label
		}
		_ = w.WriteEvent(Event{Op: op, TID: int32(o.Thread), Addr: o.Start, Size: o.Size, Name: name})
	})
	h.AddFreeHook(func(start, size uint64) {
		_ = w.WriteEvent(Event{Op: OpFree, Addr: start})
	})
}

// RecordingHeap wraps a heap so that allocations, frees and globals are
// mirrored into a trace Writer. The instrumentation front-end records
// accesses by using the Writer (or a Tee) as its sink.
type RecordingHeap struct {
	*mem.Heap
	W *Writer
}

// Alloc allocates and records the allocation.
func (rh *RecordingHeap) Alloc(thread int, size uint64, skip int) (uint64, error) {
	addr, err := rh.Heap.Alloc(thread, size, skip+1)
	if err == nil {
		err = rh.W.WriteEvent(Event{Op: OpAlloc, TID: int32(thread), Addr: addr, Size: size})
	}
	return addr, err
}

// Free frees and records the deallocation.
func (rh *RecordingHeap) Free(addr uint64) error {
	if err := rh.Heap.Free(addr); err != nil {
		return err
	}
	return rh.W.WriteEvent(Event{Op: OpFree, Addr: addr})
}

// DefineGlobal registers a global and records it.
func (rh *RecordingHeap) DefineGlobal(name string, size uint64) (uint64, error) {
	addr, err := rh.Heap.DefineGlobal(name, size)
	if err == nil {
		err = rh.W.WriteEvent(Event{Op: OpGlobal, Addr: addr, Size: size, Name: name})
	}
	return addr, err
}

// Tee is an instr.Sink that forwards each access to several sinks — e.g. the
// live runtime and a trace Writer simultaneously.
type Tee []interface {
	HandleAccess(tid int, addr, size uint64, isWrite bool)
}

// HandleAccess forwards to every sink in order.
func (t Tee) HandleAccess(tid int, addr, size uint64, isWrite bool) {
	for _, s := range t {
		s.HandleAccess(tid, addr, size, isWrite)
	}
}
