// Package trace records and replays instrumented access streams. A trace
// captures everything the PREDATOR runtime consumes — accesses, allocations,
// frees, global registrations, thread naming — in a compact varint-encoded
// binary format, so a run can be replayed deterministically through a fresh
// runtime (possibly with different thresholds, sampling rates, or prediction
// settings) without re-executing the workload. This is the repository's
// deterministic-experiment substrate: cmd/predreplay and several tests use
// it to re-analyze one interleaving under many configurations.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Magic identifies trace files, followed by a format version byte.
var Magic = [8]byte{'P', 'R', 'E', 'D', 'T', 'R', 'C', '1'}

// Op is an event discriminator.
type Op uint8

// Trace event kinds.
const (
	OpRead   Op = 1 // memory read: tid, addr, size
	OpWrite  Op = 2 // memory write: tid, addr, size
	OpAlloc  Op = 3 // allocation: tid, addr, size
	OpFree   Op = 4 // deallocation: addr
	OpGlobal Op = 5 // global registration: addr, size, name
	OpThread Op = 6 // thread naming: tid, name
)

// Event is one decoded trace record.
type Event struct {
	Op   Op
	TID  int32
	Addr uint64
	Size uint64
	Name string
}

// Header describes the recorded heap so replay can rebuild it.
type Header struct {
	HeapBase uint64
	HeapSize uint64
	LineSize uint32
}

// Writer streams events to an io.Writer. Writer is safe for concurrent use:
// events from concurrent threads are serialized in arrival order, which
// becomes the replay interleaving.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf [2 * binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var tmp [20]byte
	binary.LittleEndian.PutUint64(tmp[0:], hdr.HeapBase)
	binary.LittleEndian.PutUint64(tmp[8:], hdr.HeapSize)
	binary.LittleEndian.PutUint32(tmp[16:], hdr.LineSize)
	if _, err := bw.Write(tmp[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// writeUvarint appends one varint. Caller must hold w.mu.
func (w *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// WriteEvent appends one event.
func (w *Writer) WriteEvent(e Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.WriteByte(byte(e.Op)); err != nil {
		return err
	}
	switch e.Op {
	case OpRead, OpWrite, OpAlloc:
		if err := w.writeUvarint(uint64(e.TID)); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Size); err != nil {
			return err
		}
	case OpFree:
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
	case OpGlobal:
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Size); err != nil {
			return err
		}
		if err := w.writeString(e.Name); err != nil {
			return err
		}
	case OpThread:
		if err := w.writeUvarint(uint64(e.TID)); err != nil {
			return err
		}
		if err := w.writeString(e.Name); err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unknown op %d", e.Op)
	}
	w.n++
	return nil
}

// writeString appends a length-prefixed string. Caller must hold w.mu.
func (w *Writer) writeString(s string) error {
	if err := w.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := w.w.WriteString(s)
	return err
}

// Events returns the number of events written.
func (w *Writer) Events() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush flushes buffered output; call it before closing the underlying file.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// HandleAccess implements instr.Sink so a Writer can record directly from
// the instrumentation front-end. Encoding errors are deferred to Flush.
func (w *Writer) HandleAccess(tid int, addr, size uint64, isWrite bool) {
	op := OpRead
	if isWrite {
		op = OpWrite
	}
	_ = w.WriteEvent(Event{Op: op, TID: int32(tid), Addr: addr, Size: size})
}

// Reader streams events back from a trace.
type Reader struct {
	r   *bufio.Reader
	hdr Header
}

// ErrBadMagic reports a non-trace input.
var ErrBadMagic = errors.New("trace: bad magic (not a PREDATOR trace)")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var tmp [20]byte
	if _, err := io.ReadFull(br, tmp[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	return &Reader{
		r: br,
		hdr: Header{
			HeapBase: binary.LittleEndian.Uint64(tmp[0:]),
			HeapSize: binary.LittleEndian.Uint64(tmp[8:]),
			LineSize: binary.LittleEndian.Uint32(tmp[16:]),
		},
	}, nil
}

// Header returns the trace's heap description.
func (r *Reader) Header() Header { return r.hdr }

// Next decodes one event; it returns io.EOF at the end of the trace.
func (r *Reader) Next() (Event, error) {
	op, err := r.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF passes through
	}
	e := Event{Op: Op(op)}
	switch e.Op {
	case OpRead, OpWrite, OpAlloc:
		tid, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		e.TID = int32(tid)
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		if e.Size, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
	case OpFree:
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
	case OpGlobal:
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		if e.Size, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		if e.Name, err = r.readString(); err != nil {
			return Event{}, err
		}
	case OpThread:
		tid, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		e.TID = int32(tid)
		if e.Name, err = r.readString(); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("trace: unknown op %d", op)
	}
	return e, nil
}

// readString decodes a length-prefixed string.
func (r *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", err)
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", err)
	}
	return string(buf), nil
}
