// Package trace records and replays instrumented access streams. A trace
// captures everything the PREDATOR runtime consumes — accesses, allocations,
// frees, global registrations, thread naming — in a compact varint-encoded
// binary format, so a run can be replayed deterministically through a fresh
// runtime (possibly with different thresholds, sampling rates, or prediction
// settings) without re-executing the workload. This is the repository's
// deterministic-experiment substrate: cmd/predreplay and several tests use
// it to re-analyze one interleaving under many configurations.
//
// Readers come in two modes. The strict reader (NewReader) fails on the
// first malformed or truncated record with a typed *DecodeError carrying the
// byte offset and event index where decoding failed. The salvage reader
// (NewSalvageReader) is the resilience-layer mode for untrusted traces: it
// skips undecodable bytes, resynchronizes on the next decodable record, and
// accounts every skip in SalvageStats — it never fails mid-stream, so a
// truncated or bit-flipped trace still replays to completion.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Magic identifies trace files, followed by a format version byte.
var Magic = [8]byte{'P', 'R', 'E', 'D', 'T', 'R', 'C', '1'}

// headerSize is the encoded size of the magic plus the Header fields.
const headerSize = 8 + 20

// maxStringLen caps length-prefixed strings; longer claims are corruption.
const maxStringLen = 1 << 20

// maxRecordSize bounds one encoded record: opcode, up to three varints, a
// string length varint, and the string bytes. The reader's buffer is sized
// so any whole record can be inspected with Peek before it is consumed.
const maxRecordSize = 1 + 3*binary.MaxVarintLen64 + binary.MaxVarintLen64 + maxStringLen

// peekQuantum is the first-attempt peek per record. Every record except a
// string-bearing one (OpGlobal/OpThread with a long name) fits well inside
// it; those few escalate to a maxRecordSize peek. Peeking the full
// maxRecordSize on every record would force bufio to slide-and-refill its
// megabyte buffer per record — quadratic over the trace.
const peekQuantum = 512

// Op is an event discriminator.
type Op uint8

// Trace event kinds.
const (
	OpRead   Op = 1 // memory read: tid, addr, size
	OpWrite  Op = 2 // memory write: tid, addr, size
	OpAlloc  Op = 3 // allocation: tid, addr, size
	OpFree   Op = 4 // deallocation: addr
	OpGlobal Op = 5 // global registration: addr, size, name
	OpThread Op = 6 // thread naming: tid, name
)

// valid reports whether the opcode is a defined event kind.
func (op Op) valid() bool { return op >= OpRead && op <= OpThread }

// Event is one decoded trace record.
type Event struct {
	Op   Op
	TID  int32
	Addr uint64
	Size uint64
	Name string
}

// Header describes the recorded heap so replay can rebuild it.
type Header struct {
	HeapBase uint64
	HeapSize uint64
	LineSize uint32
}

// Typed decode failures.
var (
	// ErrBadMagic reports a non-trace input.
	ErrBadMagic = errors.New("trace: bad magic (not a PREDATOR trace)")
	// ErrUnknownOp reports an opcode outside the defined event kinds.
	ErrUnknownOp = errors.New("trace: unknown opcode")
	// ErrCorruptRecord reports a structurally invalid record (varint
	// overflow, implausible string length, out-of-range thread id).
	ErrCorruptRecord = errors.New("trace: corrupt record")
	// ErrTruncated reports a record cut off by the end of the input.
	ErrTruncated = errors.New("trace: truncated record")
)

// errShort is the internal "need more bytes" signal from the slice decoder;
// the reader translates it into ErrTruncated (strict) or a skip (salvage).
var errShort = errors.New("trace: short buffer")

// DecodeError locates a decode failure: the byte offset in the trace file
// where the failing record begins and the index of the event being decoded
// (0-based; equals the number of events decoded successfully before it).
type DecodeError struct {
	Offset int64
	Index  uint64
	Err    error
}

// Error formats the failure with its location.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("%v at byte offset %d (event index %d)", e.Err, e.Offset, e.Index)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// UnknownOpError is returned by Writer.WriteEvent for an undefined opcode —
// before anything is written, so a bad event cannot poison the stream.
type UnknownOpError struct{ Op Op }

// Error names the rejected opcode.
func (e *UnknownOpError) Error() string {
	return fmt.Sprintf("trace: unknown opcode %d (event not written)", e.Op)
}

// Unwrap ties the error to ErrUnknownOp.
func (e *UnknownOpError) Unwrap() error { return ErrUnknownOp }

// Writer streams events to an io.Writer. Writer is safe for concurrent use:
// events from concurrent threads are serialized in arrival order, which
// becomes the replay interleaving.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf [2 * binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var tmp [20]byte
	binary.LittleEndian.PutUint64(tmp[0:], hdr.HeapBase)
	binary.LittleEndian.PutUint64(tmp[8:], hdr.HeapSize)
	binary.LittleEndian.PutUint32(tmp[16:], hdr.LineSize)
	if _, err := bw.Write(tmp[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// writeUvarint appends one varint. Caller must hold w.mu.
func (w *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// WriteEvent appends one event. An undefined opcode is rejected with a
// typed *UnknownOpError before any byte reaches the stream.
func (w *Writer) WriteEvent(e Event) error {
	if !e.Op.valid() {
		return &UnknownOpError{Op: e.Op}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.WriteByte(byte(e.Op)); err != nil {
		return err
	}
	switch e.Op {
	case OpRead, OpWrite, OpAlloc:
		if err := w.writeUvarint(uint64(e.TID)); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Size); err != nil {
			return err
		}
	case OpFree:
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
	case OpGlobal:
		if err := w.writeUvarint(e.Addr); err != nil {
			return err
		}
		if err := w.writeUvarint(e.Size); err != nil {
			return err
		}
		if err := w.writeString(e.Name); err != nil {
			return err
		}
	case OpThread:
		if err := w.writeUvarint(uint64(e.TID)); err != nil {
			return err
		}
		if err := w.writeString(e.Name); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// writeString appends a length-prefixed string. Caller must hold w.mu.
func (w *Writer) writeString(s string) error {
	if err := w.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := w.w.WriteString(s)
	return err
}

// Events returns the number of events written.
func (w *Writer) Events() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush flushes buffered output; call it before closing the underlying file.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// HandleAccess implements instr.Sink so a Writer can record directly from
// the instrumentation front-end. Encoding errors are deferred to Flush.
func (w *Writer) HandleAccess(tid int, addr, size uint64, isWrite bool) {
	op := OpRead
	if isWrite {
		op = OpWrite
	}
	_ = w.WriteEvent(Event{Op: op, TID: int32(tid), Addr: addr, Size: size})
}

// SalvageStats accounts everything a salvage reader skipped or repaired.
// The zero value (Clean() == true) means the trace decoded perfectly.
type SalvageStats struct {
	Events         uint64 // events decoded successfully
	CorruptRegions uint64 // maximal runs of undecodable bytes skipped
	SkippedBytes   uint64 // total bytes skipped across all regions
	TruncatedTail  bool   // the trace ended mid-record
	HeaderDamaged  bool   // magic/header unusable; defaults substituted
	// FirstErrorOffset is the byte offset of the first undecodable byte,
	// or -1 when the trace was clean.
	FirstErrorOffset int64
	// Errors holds the first few decode failures (capped) for diagnostics.
	Errors []string
}

// maxSalvageErrors caps the retained per-region diagnostics.
const maxSalvageErrors = 16

// Clean reports whether nothing was skipped or repaired.
func (s *SalvageStats) Clean() bool {
	return s.CorruptRegions == 0 && !s.TruncatedTail && !s.HeaderDamaged
}

// String summarizes the salvage for degradation banners.
func (s *SalvageStats) String() string {
	if s.Clean() {
		return fmt.Sprintf("clean: %d events", s.Events)
	}
	msg := fmt.Sprintf("salvaged %d events; %d corrupt region(s), %d byte(s) skipped",
		s.Events, s.CorruptRegions, s.SkippedBytes)
	if s.TruncatedTail {
		msg += "; truncated tail"
	}
	if s.HeaderDamaged {
		msg += "; header damaged (defaults substituted)"
	}
	return msg
}

// Reader streams events back from a trace.
type Reader struct {
	r       *bufio.Reader
	hdr     Header
	off     int64  // byte offset of the next undecoded byte
	index   uint64 // events decoded so far
	salvage bool
	stats   SalvageStats
	// tailSkip remembers whether the bytes immediately before EOF were
	// skipped, which is what distinguishes a truncated tail from a clean
	// end after an interior corruption.
	tailSkip bool
}

// NewReader validates the header and returns a strict Reader: the first
// malformed or truncated record fails Next with a *DecodeError.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, maxRecordSize)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var tmp [20]byte
	if _, err := io.ReadFull(br, tmp[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	rd := &Reader{r: br, off: headerSize, hdr: decodeHeader(tmp[:])}
	rd.stats.FirstErrorOffset = -1
	return rd, nil
}

// NewSalvageReader returns a Reader in salvage mode: undecodable bytes are
// skipped and accounted in Stats instead of failing Next. A damaged or
// truncated header is tolerated too — the paper-default heap geometry is
// substituted and the damage is flagged in Stats. Only I/O errors from the
// underlying reader are fatal.
func NewSalvageReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, maxRecordSize)
	rd := &Reader{r: br, salvage: true}
	rd.stats.FirstErrorOffset = -1
	buf, perr := br.Peek(headerSize)
	if perr != nil && perr != io.EOF {
		return nil, fmt.Errorf("trace: reading header: %w", perr)
	}
	if len(buf) == headerSize && bytes.Equal(buf[:8], Magic[:]) {
		rd.hdr = decodeHeader(buf[8:])
		if _, err := br.Discard(headerSize); err != nil {
			return nil, err
		}
		rd.off = headerSize
		return rd, nil
	}
	// Header unusable: substitute defaults and let the scan loop skip the
	// damaged prefix as an ordinary corrupt region.
	rd.stats.HeaderDamaged = true
	rd.hdr = defaultHeader()
	return rd, nil
}

// decodeHeader parses the 20 fixed header bytes after the magic.
func decodeHeader(b []byte) Header {
	return Header{
		HeapBase: binary.LittleEndian.Uint64(b[0:]),
		HeapSize: binary.LittleEndian.Uint64(b[8:]),
		LineSize: binary.LittleEndian.Uint32(b[16:]),
	}
}

// defaultHeader is the substitute geometry for salvaged traces whose header
// is unusable: the paper's 256 MiB heap at 0x400000000 with 64-byte lines
// (mirrors mem.DefaultBase/DefaultSize; duplicated to keep this file free of
// heap imports).
func defaultHeader() Header {
	return Header{HeapBase: 0x400000000, HeapSize: 256 << 20, LineSize: 64}
}

// Header returns the trace's heap description.
func (r *Reader) Header() Header { return r.hdr }

// Offset returns the byte offset of the next undecoded byte.
func (r *Reader) Offset() int64 { return r.off }

// Index returns how many events have been decoded so far.
func (r *Reader) Index() uint64 { return r.index }

// Salvaging reports whether the reader is in salvage mode.
func (r *Reader) Salvaging() bool { return r.salvage }

// Stats returns the salvage account so far. Meaningful for salvage readers;
// a strict reader reports a clean zero value.
func (r *Reader) Stats() SalvageStats { return r.stats }

// Next decodes one event; it returns io.EOF at the end of the trace. In
// strict mode a malformed or truncated record fails with a *DecodeError; in
// salvage mode it is skipped (accounted in Stats) and Next keeps scanning
// for the next decodable record.
func (r *Reader) Next() (Event, error) {
	if r.salvage {
		return r.nextSalvage()
	}
	buf, perr := r.r.Peek(peekQuantum)
	if len(buf) == 0 {
		if perr == nil || perr == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, perr
	}
	e, n, err := decodeEvent(buf)
	if err == errShort && len(buf) == peekQuantum {
		// The record may simply span past the quantum: retry with the
		// full-record peek before concluding truncation.
		buf, perr = r.r.Peek(maxRecordSize)
		e, n, err = decodeEvent(buf)
	}
	if err == errShort {
		if perr != nil && perr != io.EOF {
			return Event{}, perr
		}
		return Event{}, &DecodeError{Offset: r.off, Index: r.index,
			Err: fmt.Errorf("%w: %v", ErrTruncated, io.ErrUnexpectedEOF)}
	}
	if err != nil {
		return Event{}, &DecodeError{Offset: r.off, Index: r.index, Err: err}
	}
	r.commit(n)
	return e, nil
}

// nextSalvage scans for the next decodable record, skipping and accounting
// undecodable bytes.
func (r *Reader) nextSalvage() (Event, error) {
	inRegion := false
	for {
		buf, perr := r.r.Peek(peekQuantum)
		if len(buf) == 0 {
			if perr != nil && perr != io.EOF {
				return Event{}, perr
			}
			if r.tailSkip {
				r.stats.TruncatedTail = true
			}
			return Event{}, io.EOF
		}
		e, n, err := decodeEvent(buf)
		if err == errShort && len(buf) == peekQuantum {
			buf, perr = r.r.Peek(maxRecordSize)
			e, n, err = decodeEvent(buf)
		}
		if err == nil {
			r.commit(n)
			r.stats.Events++
			r.tailSkip = false
			return e, nil
		}
		if err == errShort && perr != nil && perr != io.EOF {
			return Event{}, perr
		}
		// Malformed, or truncated at EOF: open (or extend) a corrupt
		// region and resynchronize one byte at a time.
		if !inRegion {
			inRegion = true
			r.stats.CorruptRegions++
			if r.stats.FirstErrorOffset < 0 {
				r.stats.FirstErrorOffset = r.off
			}
			if len(r.stats.Errors) < maxSalvageErrors {
				r.stats.Errors = append(r.stats.Errors,
					fmt.Sprintf("byte offset %d (event index %d): %v", r.off, r.index, err))
			}
		}
		if _, derr := r.r.Discard(1); derr != nil {
			return Event{}, derr
		}
		r.off++
		r.stats.SkippedBytes++
		r.tailSkip = true
	}
}

// commit consumes n decoded bytes.
func (r *Reader) commit(n int) {
	_, _ = r.r.Discard(n)
	r.off += int64(n)
	r.index++
}

// decodeEvent decodes one record from the head of buf. It returns the event
// and its encoded length, errShort when buf ends before the record does, or
// a malformed-record error.
func decodeEvent(buf []byte) (Event, int, error) {
	op := Op(buf[0])
	if !op.valid() {
		return Event{}, 0, fmt.Errorf("%w %d", ErrUnknownOp, uint8(op))
	}
	e := Event{Op: op}
	i := 1
	switch op {
	case OpRead, OpWrite, OpAlloc:
		tid, err := decodeUvarint(buf, &i)
		if err != nil {
			return Event{}, 0, err
		}
		if tid > math.MaxInt32 {
			return Event{}, 0, fmt.Errorf("%w: thread id %d out of range", ErrCorruptRecord, tid)
		}
		e.TID = int32(tid)
		if e.Addr, err = decodeUvarint(buf, &i); err != nil {
			return Event{}, 0, err
		}
		if e.Size, err = decodeUvarint(buf, &i); err != nil {
			return Event{}, 0, err
		}
	case OpFree:
		var err error
		if e.Addr, err = decodeUvarint(buf, &i); err != nil {
			return Event{}, 0, err
		}
	case OpGlobal:
		var err error
		if e.Addr, err = decodeUvarint(buf, &i); err != nil {
			return Event{}, 0, err
		}
		if e.Size, err = decodeUvarint(buf, &i); err != nil {
			return Event{}, 0, err
		}
		if e.Name, err = decodeString(buf, &i); err != nil {
			return Event{}, 0, err
		}
	case OpThread:
		tid, err := decodeUvarint(buf, &i)
		if err != nil {
			return Event{}, 0, err
		}
		if tid > math.MaxInt32 {
			return Event{}, 0, fmt.Errorf("%w: thread id %d out of range", ErrCorruptRecord, tid)
		}
		e.TID = int32(tid)
		if e.Name, err = decodeString(buf, &i); err != nil {
			return Event{}, 0, err
		}
	}
	return e, i, nil
}

// decodeUvarint decodes one varint at *i, advancing it.
func decodeUvarint(buf []byte, i *int) (uint64, error) {
	v, n := binary.Uvarint(buf[*i:])
	if n == 0 {
		return 0, errShort
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint overflow", ErrCorruptRecord)
	}
	*i += n
	return v, nil
}

// decodeString decodes a length-prefixed string at *i, advancing it.
func decodeString(buf []byte, i *int) (string, error) {
	n, err := decodeUvarint(buf, i)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: implausible string length %d", ErrCorruptRecord, n)
	}
	if uint64(len(buf)-*i) < n {
		return "", errShort
	}
	s := string(buf[*i : *i+int(n)])
	*i += int(n)
	return s, nil
}
