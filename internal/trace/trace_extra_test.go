package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"predator/internal/core"
	"predator/internal/mem"
)

// failingWriter errors after n bytes.
type failingWriter struct {
	n      int
	budget int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.budget {
		return 0, errors.New("disk full")
	}
	f.n += len(p)
	return len(p), nil
}

func TestWriterPropagatesIOErrorsOnFlush(t *testing.T) {
	// Output is buffered: the underlying write error surfaces at Flush.
	w, err := NewWriter(&failingWriter{budget: 4}, testHeader())
	if err != nil {
		t.Fatalf("buffered header write failed early: %v", err)
	}
	w.HandleAccess(0, 0x400000000, 8, true)
	if err := w.Flush(); err == nil {
		t.Error("flush error swallowed")
	}
}

func TestWriteEventUnknownOp(t *testing.T) {
	w, err := NewWriter(io.Discard, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(Event{Op: Op(99)}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("PR")); err == nil {
		t.Error("truncated magic accepted")
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.WriteString("short")
	if _, err := NewReader(&buf); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReaderImplausibleString(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.Flush()
	// Hand-craft an OpGlobal with an absurd name length.
	buf.WriteByte(byte(OpGlobal))
	buf.WriteByte(0x10) // addr
	buf.WriteByte(0x08) // size
	// Varint for 2^30 (way past the 1 MiB cap).
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("implausible string length accepted")
	}
}

func TestReplayDoublesFreeAndThreads(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteEvent(Event{Op: OpThread, TID: 0, Name: "main"})
	w.WriteEvent(Event{Op: OpAlloc, TID: 0, Addr: 0x400000040, Size: 64})
	w.WriteEvent(Event{Op: OpWrite, TID: 0, Addr: 0x400000040, Size: 8})
	w.WriteEvent(Event{Op: OpFree, Addr: 0x400000040})
	w.WriteEvent(Event{Op: OpFree, Addr: 0x400000040}) // double free
	w.Flush()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig()); err == nil {
		t.Error("double free replayed without error")
	}
}

func TestReplayRejectsOverlappingImports(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteEvent(Event{Op: OpAlloc, TID: 0, Addr: 0x400000040, Size: 64})
	w.WriteEvent(Event{Op: OpAlloc, TID: 1, Addr: 0x400000060, Size: 64}) // overlaps
	w.Flush()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig()); err == nil {
		t.Error("overlapping imports replayed without error")
	}
}

func TestReplayBadHeaderGeometry(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{HeapBase: 0x400000000, HeapSize: 12345, LineSize: 64})
	w.Flush()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayConfig()); err == nil {
		t.Error("non-chunk-multiple heap size replayed without error")
	}
}

func TestRecordingHeapMirrorsOperations(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	h, _ := mem.NewHeap(mem.Config{Base: 0x400000000, Size: 4 << 20})
	rh := &RecordingHeap{Heap: h, W: w}

	addr, err := rh.Alloc(2, 96, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rh.DefineGlobal("cfg", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := rh.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := rh.Free(addr); err == nil {
		t.Error("double free through RecordingHeap accepted")
	}
	w.Flush()

	r, _ := NewReader(&buf)
	var ops []Op
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, e.Op)
		if e.Op == OpGlobal && (e.Addr != g || e.Name != "cfg") {
			t.Errorf("global event = %+v", e)
		}
	}
	want := []Op{OpAlloc, OpGlobal, OpFree}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestReplayWritesOnlyEventsDetect(t *testing.T) {
	// A trace containing only write events (as a writes-only policy
	// would record) still detects write-write sharing on replay.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteEvent(Event{Op: OpAlloc, TID: 0, Addr: 0x400000040, Size: 64})
	for i := 0; i < 500; i++ {
		w.WriteEvent(Event{Op: OpWrite, TID: 1, Addr: 0x400000040, Size: 8})
		w.WriteEvent(Event{Op: OpWrite, TID: 2, Addr: 0x400000048, Size: 8})
	}
	w.Flush()
	res, err := Replay(bytes.NewReader(buf.Bytes()), core.Config{
		TrackingThreshold: 10, PredictionThreshold: 20, ReportThreshold: 50, Prediction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.FalseSharing()) == 0 {
		t.Error("writes-only trace lost the sharing")
	}
}
