package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"predator/internal/core"
	"predator/internal/resilience/faultinject"
)

// freeTrace builds a trace of n OpFree records with a one-byte address
// varint, so every record is exactly 2 bytes: [0x04][0x48]. Fixed-size
// records let corruption tests predict region counts and offsets exactly.
func freeTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.WriteEvent(Event{Op: OpFree, Addr: 0x48}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainSalvage decodes the whole input in salvage mode and returns the stats.
func drainSalvage(t *testing.T, raw []byte) SalvageStats {
	t.Helper()
	r, err := NewSalvageReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewSalvageReader: %v", err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("salvage Next: %v", err)
		}
	}
	return r.Stats()
}

func TestWriterRejectsUnknownOpTyped(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	err = w.WriteEvent(Event{Op: Op(99), Addr: 0x48})
	if !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
	var ue *UnknownOpError
	if !errors.As(err, &ue) || ue.Op != Op(99) {
		t.Errorf("err = %#v, want *UnknownOpError{Op: 99}", err)
	}
	if w.Events() != 0 {
		t.Errorf("Events = %d after rejected write", w.Events())
	}
	// Nothing beyond the header may have been written.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != headerSize {
		t.Errorf("stream grew to %d bytes; rejected event leaked partial bytes", buf.Len())
	}
	if s := drainSalvage(t, buf.Bytes()); !s.Clean() || s.Events != 0 {
		t.Errorf("stream after rejected write not clean: %+v", s)
	}
}

func TestSalvageCleanTrace(t *testing.T) {
	const n = 10
	s := drainSalvage(t, freeTrace(t, n))
	if !s.Clean() {
		t.Errorf("clean trace reported damage: %+v", s)
	}
	if s.Events != n || s.FirstErrorOffset != -1 {
		t.Errorf("Events=%d FirstErrorOffset=%d", s.Events, s.FirstErrorOffset)
	}
}

func TestSalvageExactCorruptionAccounting(t *testing.T) {
	const n = 20
	raw := freeTrace(t, n)
	// Stomp the opcode byte of non-adjacent records so every corruption is
	// its own maximal region: both bytes of the record become undecodable.
	records := []int{2, 5, 9, 14}
	var offsets []int
	for _, rec := range records {
		offsets = append(offsets, headerSize+2*rec)
	}
	corrupted, faults := faultinject.CorruptAt(raw, offsets, 0xFF)
	if len(faults) != len(records) {
		t.Fatalf("injected %d faults, want %d", len(faults), len(records))
	}
	s := drainSalvage(t, corrupted)
	if s.CorruptRegions != uint64(len(records)) {
		t.Errorf("CorruptRegions = %d, want %d", s.CorruptRegions, len(records))
	}
	if s.Events != n-uint64(len(records)) {
		t.Errorf("Events = %d, want %d", s.Events, n-len(records))
	}
	if s.SkippedBytes != 2*uint64(len(records)) {
		t.Errorf("SkippedBytes = %d, want %d", s.SkippedBytes, 2*len(records))
	}
	if want := int64(headerSize + 2*records[0]); s.FirstErrorOffset != want {
		t.Errorf("FirstErrorOffset = %d, want %d", s.FirstErrorOffset, want)
	}
	if s.TruncatedTail {
		t.Error("TruncatedTail set for corruption-only damage")
	}
	if len(s.Errors) != len(records) {
		t.Errorf("retained %d diagnostics, want %d", len(s.Errors), len(records))
	}
}

func TestSalvageTruncatedTail(t *testing.T) {
	raw := freeTrace(t, 5)
	s := drainSalvage(t, raw[:len(raw)-1]) // cut mid-record
	if !s.TruncatedTail {
		t.Errorf("TruncatedTail not set: %+v", s)
	}
	if s.Events != 4 {
		t.Errorf("Events = %d, want 4", s.Events)
	}
}

func TestSalvageDamagedMagic(t *testing.T) {
	raw := freeTrace(t, 5)
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	r, err := NewSalvageReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("NewSalvageReader on damaged magic: %v", err)
	}
	if !r.Stats().HeaderDamaged {
		t.Error("HeaderDamaged not set")
	}
	if r.Header() != defaultHeader() {
		t.Errorf("header = %+v, want defaults", r.Header())
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if s := r.Stats(); s.Clean() {
		t.Error("damaged-magic trace reported clean")
	}
}

func TestStrictDecodeErrorCarriesOffsetAndIndex(t *testing.T) {
	raw := freeTrace(t, 6)
	target := 3 // corrupt the opcode of the fourth record
	corrupted, _ := faultinject.CorruptAt(raw, []int{headerSize + 2*target}, 0xFF)
	r, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < target; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	_, err = r.Next()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DecodeError", err)
	}
	if de.Offset != int64(headerSize+2*target) || de.Index != uint64(target) {
		t.Errorf("DecodeError at offset %d index %d, want %d / %d",
			de.Offset, de.Index, headerSize+2*target, target)
	}
	if !errors.Is(err, ErrUnknownOp) {
		t.Errorf("err = %v does not unwrap to ErrUnknownOp", err)
	}
}

// TestTruncatedAtEveryByteOffset cuts a mixed trace at every possible byte
// boundary. The strict reader must fail with a typed error (or plain EOF at a
// record boundary) and the salvage reader must always drain to completion —
// neither may panic.
func TestTruncatedAtEveryByteOffset(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Op: OpThread, TID: 0, Name: "main"},
		{Op: OpAlloc, TID: 0, Addr: 0x400000040, Size: 128},
		{Op: OpWrite, TID: 0, Addr: 0x400000040, Size: 8},
		{Op: OpRead, TID: 1, Addr: 0x400000048, Size: 4},
		{Op: OpGlobal, Addr: 0x400010000, Size: 64, Name: "counters"},
		{Op: OpFree, Addr: 0x400000040},
	}
	for _, e := range events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 0; cut <= len(raw); cut++ {
		prefix := raw[:cut]

		// Strict: construction fails before a full header exists; after
		// that, decoding ends in io.EOF (boundary cut) or a DecodeError.
		r, err := NewReader(bytes.NewReader(prefix))
		if cut < headerSize {
			if err == nil {
				t.Fatalf("cut %d: strict reader accepted a partial header", cut)
			}
		} else {
			if err != nil {
				t.Fatalf("cut %d: NewReader: %v", cut, err)
			}
			decoded := 0
			for {
				_, err := r.Next()
				if err == nil {
					decoded++
					continue
				}
				if err != io.EOF {
					var de *DecodeError
					if !errors.As(err, &de) {
						t.Fatalf("cut %d: untyped decode failure %v", cut, err)
					}
					if !errors.Is(err, ErrTruncated) {
						t.Fatalf("cut %d: err %v, want ErrTruncated", cut, err)
					}
				}
				break
			}
			if decoded > len(events) {
				t.Fatalf("cut %d: decoded %d events from a prefix of %d", cut, decoded, len(events))
			}
		}

		// Salvage: always constructs, always drains.
		sr, err := NewSalvageReader(bytes.NewReader(prefix))
		if err != nil {
			t.Fatalf("cut %d: NewSalvageReader: %v", cut, err)
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("cut %d: salvage Next: %v", cut, err)
			}
		}
		s := sr.Stats()
		if s.Events > uint64(len(events)) {
			t.Fatalf("cut %d: salvaged %d events from a prefix", cut, s.Events)
		}
		if cut == len(raw) && !s.Clean() {
			t.Fatalf("full trace reported damage: %+v", s)
		}
	}
}

// TestReplaySalvageEndToEnd corrupts write records in a recorded false
// sharing trace and checks the salvage replay still terminates with a
// report, with salvage stats matching the injected damage exactly.
func TestReplaySalvageEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x400000040)
	w.WriteEvent(Event{Op: OpThread, TID: 0, Name: "a"})
	w.WriteEvent(Event{Op: OpThread, TID: 1, Name: "b"})
	w.WriteEvent(Event{Op: OpAlloc, TID: 0, Addr: base, Size: 64})
	// Record the start offset of every write record so corruption can
	// target opcode bytes precisely.
	w.Flush()
	var writeOffsets []int
	const writes = 300
	for i := 0; i < writes; i++ {
		w.Flush()
		writeOffsets = append(writeOffsets, buf.Len())
		w.WriteEvent(Event{Op: OpWrite, TID: 0, Addr: base, Size: 8})
		w.Flush()
		writeOffsets = append(writeOffsets, buf.Len())
		w.WriteEvent(Event{Op: OpWrite, TID: 1, Addr: base + 8, Size: 8})
	}
	w.Flush()
	raw := buf.Bytes()

	// Corrupt the opcodes of a handful of non-adjacent write records. A
	// write record here is [op][tid][addr:5][size] = 8 bytes with no
	// byte that aliases a valid opcode, so each stomp skips one whole
	// record as one region.
	targets := []int{writeOffsets[10], writeOffsets[100], writeOffsets[333]}
	corrupted, _ := faultinject.CorruptAt(raw, targets, 0xFF)

	cfg := core.Config{
		TrackingThreshold:   10,
		PredictionThreshold: 20,
		ReportThreshold:     50,
	}
	res, err := ReplayWithOptions(bytes.NewReader(corrupted), cfg, ReplayOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage replay: %v", err)
	}
	if res.Salvage == nil {
		t.Fatal("no salvage stats on a salvage replay")
	}
	if res.Salvage.CorruptRegions != uint64(len(targets)) {
		t.Errorf("CorruptRegions = %d, want %d", res.Salvage.CorruptRegions, len(targets))
	}
	if res.Salvage.SkippedBytes != 8*uint64(len(targets)) {
		t.Errorf("SkippedBytes = %d, want %d", res.Salvage.SkippedBytes, 8*len(targets))
	}
	if want := uint64(3 + 2*writes - len(targets)); res.Events != want {
		t.Errorf("Events = %d, want %d", res.Events, want)
	}
	if res.Report == nil {
		t.Fatal("salvage replay returned no report")
	}
	if len(res.Report.FalseSharing()) == 0 {
		t.Error("false sharing lost to salvage despite surviving writes")
	}

	// The same damaged trace must fail strictly without -salvage.
	if _, err := Replay(bytes.NewReader(corrupted), cfg); err == nil {
		t.Error("strict replay accepted a corrupt trace")
	}
}
