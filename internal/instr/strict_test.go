package instr

import (
	"errors"
	"testing"
)

func TestNonStrictAbsorbsOutOfHeapAccesses(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	in.SetStrict(false)
	th := in.NewThread("w")
	bad := uint64(0x10) // far below the heap base

	if got := th.Load64(bad); got != 0 {
		t.Errorf("faulted Load64 = %#x, want 0", got)
	}
	th.Store64(bad, 42) // dropped, must not panic
	dst := []byte{1, 2, 3, 4}
	th.ReadBytes(bad, dst)
	for i, b := range dst {
		if b != 0 {
			t.Errorf("faulted ReadBytes left dst[%d] = %#x", i, b)
		}
	}

	if th.Faults() != 3 {
		t.Errorf("thread Faults = %d, want 3", th.Faults())
	}
	if in.Faults() != 3 {
		t.Errorf("instrumenter Faults = %d, want 3", in.Faults())
	}
	if !errors.Is(th.LastFault(), ErrOutOfHeap) {
		t.Errorf("LastFault = %v, want ErrOutOfHeap", th.LastFault())
	}
	var oe *OutOfHeapError
	if !errors.As(th.LastFault(), &oe) || oe.Addr != bad {
		t.Errorf("LastFault = %#v, want *OutOfHeapError at %#x", th.LastFault(), bad)
	}
	if len(rec.events) != 0 {
		t.Errorf("faulted accesses were delivered to the sink: %d events", len(rec.events))
	}

	// Valid accesses keep working and are still instrumented.
	th.Store64(addr, 7)
	if got := th.Load64(addr); got != 7 {
		t.Errorf("Load64 after faults = %d", got)
	}
	if len(rec.events) != 2 {
		t.Errorf("valid accesses not delivered: %d events", len(rec.events))
	}
	if th.Faults() != 3 {
		t.Errorf("valid accesses counted as faults: %d", th.Faults())
	}
}

func TestStrictIsDefaultAndRestorable(t *testing.T) {
	in, _, _ := setup(t, Policy{})
	if !in.Strict() {
		t.Fatal("new instrumenter is not strict")
	}
	in.SetStrict(false)
	th := in.NewThread("w")
	th.Load64(0x10) // absorbed
	in.SetStrict(true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict mode restored but out-of-heap access did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrOutOfHeap) {
			t.Errorf("panic value = %v, want an ErrOutOfHeap error", r)
		}
	}()
	th.Load64(0x10)
}
