// Package instr is PREDATOR's instrumentation front-end — the Go analog of
// the paper's LLVM pass (§2.2). The LLVM pass rewrites every load and store
// into a call that tells the runtime the access's address, size, and type;
// here, workloads access the simulated heap exclusively through the typed
// accessors on Thread, each of which performs the access on backing memory
// and then delivers the identical (thread, address, size, read/write) event
// to the runtime.
//
// The selective-instrumentation knobs of §2.4.2 are modelled as front-end
// policy: writes-only instrumentation (detecting write-write false sharing
// only, as SHERIFF does), per-site deduplication (the pass instruments each
// access expression once per basic block — emulated by dropping immediately
// repeated (address, type) events per thread), and function black/whitelists
// keyed by a thread's current scope.
package instr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"predator/internal/mem"
	"predator/internal/obs"
	"predator/internal/sched"
)

// ErrOutOfHeap reports an access outside the simulated heap. In strict mode
// (the default) such an access panics — workloads are trusted code and the
// bug must fail loudly; in non-strict mode (SetStrict(false), the resilience
// layer's fault-tolerant front-end) the access is absorbed: loads return
// zero, stores are dropped, and the fault is recorded per-thread and
// per-instrumenter as a typed *OutOfHeapError wrapping this sentinel.
var ErrOutOfHeap = errors.New("instr: access outside simulated heap")

// OutOfHeapError locates one out-of-heap access.
type OutOfHeapError struct {
	Addr uint64
	Size uint64
}

// Error formats the faulting range.
func (e *OutOfHeapError) Error() string {
	return fmt.Sprintf("instr: access [%#x,%#x) outside simulated heap", e.Addr, e.Addr+e.Size)
}

// Unwrap ties the error to ErrOutOfHeap for errors.Is.
func (e *OutOfHeapError) Unwrap() error { return ErrOutOfHeap }

// Sink receives instrumentation events. *core.Runtime implements Sink; a
// trace writer or a tee can stand in for it.
type Sink interface {
	HandleAccess(tid int, addr, size uint64, isWrite bool)
}

// Policy selects which accesses are reported to the runtime (§2.4.2). The
// zero value reports everything.
type Policy struct {
	// WritesOnly drops read events, trading read-write detection for
	// lower overhead (write-write false sharing is still found).
	WritesOnly bool
	// DedupWindow > 0 models the pass instrumenting each (address, type)
	// once per basic block: the thread's event stream is cut into blocks
	// of DedupWindow accessor calls, and within one block duplicate
	// (line, type) events are dropped. Each new block re-emits, exactly
	// like re-executing an instrumented loop body.
	DedupWindow int
	// Whitelist, when non-empty, reports only accesses from threads
	// whose current scope is listed.
	Whitelist map[string]bool
	// Blacklist drops accesses from threads whose scope is listed.
	Blacklist map[string]bool
}

// allows reports whether the policy passes an event from the given scope.
func (p *Policy) allows(scope string, isWrite bool) bool {
	if p.WritesOnly && !isWrite {
		return false
	}
	if len(p.Whitelist) > 0 && !p.Whitelist[scope] {
		return false
	}
	if p.Blacklist[scope] {
		return false
	}
	return true
}

// Elider answers whether an access is statically proven uninteresting and
// may be dropped before delivery. *elide.Binder implements it; an interface
// keeps the front-end free of a dependency on the manifest format.
type Elider interface {
	Elidable(addr, size uint64, isWrite bool) bool
}

// Instrumenter owns the heap/runtime binding and mints Thread handles.
type Instrumenter struct {
	heap   *mem.Heap
	data   []byte
	base   uint64
	sink   Sink
	policy Policy
	elider Elider // static elision fast path; nil = no manifest loaded

	// tid → label, for timeline track naming. NewThread is cold path.
	tmu    sync.Mutex
	tnames map[int]string

	// predlint padcheck: pads keep each contended counter on its own cache line.
	_          [40]byte
	enabled    atomic.Bool
	_          [60]byte
	strict     atomic.Bool // panic on out-of-heap access (default true)
	_          [56]byte
	nextTID    atomic.Int64
	_          [56]byte
	delivered  atomic.Uint64
	_          [56]byte
	suppressed atomic.Uint64
	_          [56]byte
	faults     atomic.Uint64 // out-of-heap accesses absorbed (non-strict)
	_          [56]byte
	elided     atomic.Uint64 // events dropped by the static elision fast path

	// Observability (nil when unobserved; set via Observe before threads
	// run). Counters are batched: notify syncs the registry every
	// obs.SyncBatch-th event and FlushMetrics pushes exact totals.
	obs              *obs.Observer
	deliveredC       *obs.Counter
	suppressedC      *obs.Counter
	faultsC          *obs.Counter
	elidedC          *obs.Counter
	pushedDelivered  atomic.Uint64
	pushedSuppressed atomic.Uint64
	pushedElided     atomic.Uint64
}

// New binds an instrumenter to a heap and a sink. A nil sink produces an
// uninstrumented ("Original") executor: accessors touch memory but report
// nothing — the baseline for overhead measurements.
func New(h *mem.Heap, sink Sink, policy Policy) *Instrumenter {
	data, base := h.Backing()
	in := &Instrumenter{heap: h, data: data, base: base, sink: sink, policy: policy}
	in.enabled.Store(sink != nil)
	in.strict.Store(true)
	return in
}

// Heap returns the bound heap.
func (in *Instrumenter) Heap() *mem.Heap { return in.heap }

// Observe attaches an observability layer: delivered/suppressed event
// counters and — when the observer traces — a thread-creation event per
// NewThread. Call before minting threads; a nil observer is a no-op.
func (in *Instrumenter) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	in.obs = o
	reg := o.Metrics()
	in.deliveredC = reg.Counter("predator_events_delivered_total",
		"Instrumentation events delivered to the runtime sink.")
	in.suppressedC = reg.Counter("predator_events_suppressed_total",
		"Instrumentation events dropped by policy or per-site deduplication.")
	in.faultsC = reg.Counter("predator_heap_faults_total",
		"Out-of-heap accesses absorbed by the non-strict front-end.")
	in.elidedC = reg.Counter("predator_events_elided_total",
		"Instrumentation events dropped by the static elision fast path.")
}

// SetElision installs the static elision fast path: accesses the elider
// proves uninteresting are dropped before policy, dedup, and delivery, and
// counted as elided. Call before minting threads (publication happens via
// goroutine creation, like Observe); nil uninstalls.
func (in *Instrumenter) SetElision(e Elider) { in.elider = e }

// Elided returns the number of events dropped by the static elision fast
// path.
func (in *Instrumenter) Elided() uint64 { return in.elided.Load() }

// FlushMetrics pushes the exact delivered/suppressed totals into the
// registry; the notify hot path batches pushes to every obs.SyncBatch-th
// event. Safe to call on an unobserved instrumenter (no-op).
func (in *Instrumenter) FlushMetrics() {
	obs.SyncCounter(in.deliveredC, in.delivered.Load(), &in.pushedDelivered)
	obs.SyncCounter(in.suppressedC, in.suppressed.Load(), &in.pushedSuppressed)
	obs.SyncCounter(in.elidedC, in.elided.Load(), &in.pushedElided)
}

// SetEnabled toggles event delivery at runtime.
func (in *Instrumenter) SetEnabled(v bool) { in.enabled.Store(v && in.sink != nil) }

// SetStrict selects the out-of-heap policy: true (the default) panics on any
// out-of-heap access; false absorbs such accesses as recoverable faults (see
// ErrOutOfHeap).
func (in *Instrumenter) SetStrict(v bool) { in.strict.Store(v) }

// Strict reports the current out-of-heap policy.
func (in *Instrumenter) Strict() bool { return in.strict.Load() }

// Faults returns the total out-of-heap accesses absorbed across all threads
// (always 0 in strict mode, which panics instead).
func (in *Instrumenter) Faults() uint64 { return in.faults.Load() }

// Delivered returns the number of events delivered to the sink.
func (in *Instrumenter) Delivered() uint64 { return in.delivered.Load() }

// Suppressed returns the number of events dropped by policy or dedup.
func (in *Instrumenter) Suppressed() uint64 { return in.suppressed.Load() }

// dedupSlots is the fixed capacity of a thread's dedup ring.
const dedupSlots = 16

// Thread is one logical thread's handle: a dense thread ID plus unshared
// accessor state. A Thread must be used from a single goroutine.
type Thread struct {
	in    *Instrumenter
	id    int
	name  string
	scope string
	slot  *sched.Slot // deterministic-schedule handle; nil when free-running

	ring    [dedupSlots]uint64 // packed (line<<1 | isWrite) history
	ringLen int
	ringPos int
	evCount int // accessor calls since the current dedup block began

	// Non-strict fault accounting. A Thread is single-goroutine, so plain
	// fields suffice.
	faults    uint64
	lastFault error
}

// NewThread mints a handle with the next dense thread ID.
func (in *Instrumenter) NewThread(name string) *Thread {
	id := int(in.nextTID.Add(1) - 1)
	in.tmu.Lock()
	if in.tnames == nil {
		in.tnames = make(map[int]string)
	}
	in.tnames[id] = name
	in.tmu.Unlock()
	if in.obs.Tracing() {
		in.obs.Emit(obs.Event{Type: obs.EvThread, TID: id, Name: name})
	}
	return &Thread{in: in, id: id, name: name}
}

// ThreadNames returns a copy of the tid → label map for every thread minted
// so far. The timeline exporter uses it to name per-thread tracks.
func (in *Instrumenter) ThreadNames() map[int]string {
	in.tmu.Lock()
	defer in.tmu.Unlock()
	m := make(map[int]string, len(in.tnames))
	for id, n := range in.tnames {
		m[id] = n
	}
	return m
}

// ID returns the thread's dense ID.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's label.
func (t *Thread) Name() string { return t.name }

// SetScope labels the code region the thread is executing (function or
// module name) for white/blacklist filtering.
func (t *Thread) SetScope(scope string) { t.scope = scope }

// SetSlot attaches a deterministic scheduler slot: every accessor call then
// counts one scheduling tick, so thread interleaving — and with it every
// invalidation count — is exactly reproducible (see internal/sched).
func (t *Thread) SetSlot(slot *sched.Slot) { t.slot = slot }

// Alloc allocates from the heap on behalf of this thread, attributing the
// callsite to Alloc's caller.
func (t *Thread) Alloc(size uint64) (uint64, error) {
	return t.in.heap.Alloc(t.id, size, 1)
}

// AllocWithOffset allocates with a chosen in-line offset (Figure 2 hook).
func (t *Thread) AllocWithOffset(size, offset uint64) (uint64, error) {
	return t.in.heap.AllocWithOffset(t.id, size, offset, 1)
}

// Free releases an allocation.
func (t *Thread) Free(addr uint64) error { return t.in.heap.Free(addr) }

// notify delivers one event, applying the enable gate and policy.
func (t *Thread) notify(addr, size uint64, isWrite bool) {
	if t.slot != nil {
		t.slot.Tick()
	}
	in := t.in
	if !in.enabled.Load() {
		return
	}
	// Static elision: the slot tick above already charged this access to the
	// deterministic schedule, so dropping the event here cannot perturb
	// thread interleaving — only skip work the manifest proves redundant.
	if in.elider != nil && in.elider.Elidable(addr, size, isWrite) {
		if en := in.elided.Add(1); en&(obs.SyncBatch-1) == 0 {
			obs.SyncCounter(in.elidedC, en, &in.pushedElided)
		}
		return
	}
	if !in.policy.allows(t.scope, isWrite) {
		if sn := in.suppressed.Add(1); sn&(obs.SyncBatch-1) == 0 {
			obs.SyncCounter(in.suppressedC, sn, &in.pushedSuppressed)
		}
		return
	}
	if w := in.policy.DedupWindow; w > 0 {
		// Block boundary: a fresh "basic block" re-emits everything.
		if t.evCount >= w {
			t.evCount = 0
			t.ringLen = 0
			t.ringPos = 0
		}
		t.evCount++
		key := (addr >> 6 << 1)
		if isWrite {
			key |= 1
		}
		n := min(w, min(t.ringLen, dedupSlots))
		for i := 1; i <= n; i++ {
			if t.ring[(t.ringPos-i+dedupSlots)%dedupSlots] == key {
				if sn := in.suppressed.Add(1); sn&(obs.SyncBatch-1) == 0 {
					obs.SyncCounter(in.suppressedC, sn, &in.pushedSuppressed)
				}
				return
			}
		}
		t.ring[t.ringPos] = key
		t.ringPos = (t.ringPos + 1) % dedupSlots
		if t.ringLen < dedupSlots {
			t.ringLen++
		}
	}
	if dn := in.delivered.Add(1); dn&(obs.SyncBatch-1) == 0 {
		obs.SyncCounter(in.deliveredC, dn, &in.pushedDelivered)
	}
	in.sink.HandleAccess(t.id, addr, size, isWrite)
}

// check validates an access against the heap bounds. In strict mode (the
// default) an out-of-heap access panics: workloads are trusted code, and an
// out-of-range access is a workload bug that must fail loudly. In non-strict
// mode it records the fault and reports ok=false so the accessor absorbs the
// access instead of touching memory.
func (t *Thread) check(addr, size uint64) (off uint64, ok bool) {
	off = addr - t.in.base
	if addr < t.in.base || off+size > uint64(len(t.in.data)) || off+size < off {
		t.fault(addr, size)
		return 0, false
	}
	return off, true
}

// fault handles one out-of-heap access under the current strictness policy.
func (t *Thread) fault(addr, size uint64) {
	err := &OutOfHeapError{Addr: addr, Size: size}
	if t.in.strict.Load() {
		panic(err)
	}
	t.faults++
	t.lastFault = err
	t.in.faults.Add(1)
	t.in.faultsC.Inc()
	if t.in.obs.Tracing() {
		t.in.obs.Emit(obs.Event{Type: obs.EvFault, TID: t.id, Addr: addr, Size: size})
	}
}

// Faults returns how many out-of-heap accesses this thread has absorbed.
func (t *Thread) Faults() uint64 { return t.faults }

// LastFault returns the thread's most recent absorbed fault (a typed
// *OutOfHeapError), or nil when none occurred.
func (t *Thread) LastFault() error { return t.lastFault }

// Load64 reads a 64-bit value. A non-strict out-of-heap load returns 0.
func (t *Thread) Load64(addr uint64) uint64 {
	off, ok := t.check(addr, 8)
	if !ok {
		return 0
	}
	v := binary.LittleEndian.Uint64(t.in.data[off:])
	t.notify(addr, 8, false)
	return v
}

// Store64 writes a 64-bit value. A non-strict out-of-heap store is dropped.
func (t *Thread) Store64(addr uint64, v uint64) {
	off, ok := t.check(addr, 8)
	if !ok {
		return
	}
	binary.LittleEndian.PutUint64(t.in.data[off:], v)
	t.notify(addr, 8, true)
}

// Load32 reads a 32-bit value.
func (t *Thread) Load32(addr uint64) uint32 {
	off, ok := t.check(addr, 4)
	if !ok {
		return 0
	}
	v := binary.LittleEndian.Uint32(t.in.data[off:])
	t.notify(addr, 4, false)
	return v
}

// Store32 writes a 32-bit value.
func (t *Thread) Store32(addr uint64, v uint32) {
	off, ok := t.check(addr, 4)
	if !ok {
		return
	}
	binary.LittleEndian.PutUint32(t.in.data[off:], v)
	t.notify(addr, 4, true)
}

// Load8 reads one byte.
func (t *Thread) Load8(addr uint64) byte {
	off, ok := t.check(addr, 1)
	if !ok {
		return 0
	}
	v := t.in.data[off]
	t.notify(addr, 1, false)
	return v
}

// Store8 writes one byte.
func (t *Thread) Store8(addr uint64, v byte) {
	off, ok := t.check(addr, 1)
	if !ok {
		return
	}
	t.in.data[off] = v
	t.notify(addr, 1, true)
}

// LoadFloat64 reads a float64.
func (t *Thread) LoadFloat64(addr uint64) float64 {
	return math.Float64frombits(t.Load64(addr))
}

// StoreFloat64 writes a float64.
func (t *Thread) StoreFloat64(addr uint64, v float64) {
	t.Store64(addr, math.Float64bits(v))
}

// LoadInt64 reads an int64.
func (t *Thread) LoadInt64(addr uint64) int64 { return int64(t.Load64(addr)) }

// StoreInt64 writes an int64.
func (t *Thread) StoreInt64(addr uint64, v int64) { t.Store64(addr, uint64(v)) }

// AddInt64 is a read-modify-write convenience: one load plus one store.
func (t *Thread) AddInt64(addr uint64, delta int64) int64 {
	v := t.LoadInt64(addr) + delta
	t.StoreInt64(addr, v)
	return v
}

// ReadBytes copies n bytes from the heap into dst and reports one read of
// that size (the pass would emit one event for a memcpy-like intrinsic).
// A non-strict out-of-heap read zero-fills dst.
func (t *Thread) ReadBytes(addr uint64, dst []byte) {
	off, ok := t.check(addr, uint64(len(dst)))
	if !ok {
		clear(dst)
		return
	}
	copy(dst, t.in.data[off:off+uint64(len(dst))])
	t.notify(addr, uint64(len(dst)), false)
}

// WriteBytes copies src into the heap and reports one write of that size.
func (t *Thread) WriteBytes(addr uint64, src []byte) {
	off, ok := t.check(addr, uint64(len(src)))
	if !ok {
		return
	}
	copy(t.in.data[off:off+uint64(len(src))], src)
	t.notify(addr, uint64(len(src)), true)
}
