package instr

import (
	"testing"

	"predator/internal/mem"
)

// recorder is a Sink capturing events.
type recorder struct {
	events []event
}

type event struct {
	tid     int
	addr    uint64
	size    uint64
	isWrite bool
}

func (r *recorder) HandleAccess(tid int, addr, size uint64, isWrite bool) {
	r.events = append(r.events, event{tid, addr, size, isWrite})
}

func setup(t *testing.T, policy Policy) (*Instrumenter, *recorder, uint64) {
	t.Helper()
	h, err := mem.NewHeap(mem.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	in := New(h, rec, policy)
	addr, err := h.Alloc(0, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	return in, rec, addr
}

func TestStoreLoadRoundTrip(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	th := in.NewThread("w")
	th.Store64(addr, 0xDEADBEEFCAFEF00D)
	if got := th.Load64(addr); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("Load64 = %#x", got)
	}
	th.Store32(addr+8, 0x12345678)
	if got := th.Load32(addr + 8); got != 0x12345678 {
		t.Errorf("Load32 = %#x", got)
	}
	th.Store8(addr+12, 0xAB)
	if got := th.Load8(addr + 12); got != 0xAB {
		t.Errorf("Load8 = %#x", got)
	}
	th.StoreFloat64(addr+16, 3.14159)
	if got := th.LoadFloat64(addr + 16); got != 3.14159 {
		t.Errorf("LoadFloat64 = %v", got)
	}
	th.StoreInt64(addr+24, -42)
	if got := th.LoadInt64(addr + 24); got != -42 {
		t.Errorf("LoadInt64 = %d", got)
	}
	if len(rec.events) != 10 {
		t.Errorf("events = %d, want 10", len(rec.events))
	}
	// First event: the Store64.
	e := rec.events[0]
	if e.addr != addr || e.size != 8 || !e.isWrite || e.tid != 0 {
		t.Errorf("event = %+v", e)
	}
}

func TestAddInt64(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	th := in.NewThread("w")
	th.StoreInt64(addr, 10)
	if got := th.AddInt64(addr, 5); got != 15 {
		t.Errorf("AddInt64 = %d", got)
	}
	// Store + (load+store) = 3 events.
	if len(rec.events) != 3 {
		t.Errorf("events = %d, want 3", len(rec.events))
	}
}

func TestBytesAccessors(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	th := in.NewThread("w")
	src := []byte("hello false sharing")
	th.WriteBytes(addr, src)
	dst := make([]byte, len(src))
	th.ReadBytes(addr, dst)
	if string(dst) != string(src) {
		t.Errorf("round trip = %q", dst)
	}
	if len(rec.events) != 2 || rec.events[0].size != uint64(len(src)) {
		t.Errorf("events = %+v", rec.events)
	}
}

func TestThreadIDsDense(t *testing.T) {
	in, _, _ := setup(t, Policy{})
	a := in.NewThread("a")
	b := in.NewThread("b")
	c := in.NewThread("c")
	if a.ID() != 0 || b.ID() != 1 || c.ID() != 2 {
		t.Errorf("ids = %d,%d,%d", a.ID(), b.ID(), c.ID())
	}
	if b.Name() != "b" {
		t.Errorf("name = %q", b.Name())
	}
}

func TestNilSinkIsUninstrumented(t *testing.T) {
	h, _ := mem.NewHeap(mem.Config{Size: 1 << 20})
	in := New(h, nil, Policy{})
	addr, _ := h.Alloc(0, 64, 0)
	th := in.NewThread("native")
	th.Store64(addr, 7)
	if got := th.Load64(addr); got != 7 {
		t.Errorf("data path broken without sink: %d", got)
	}
	if in.Delivered() != 0 {
		t.Error("nil sink delivered events")
	}
}

func TestSetEnabled(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	th := in.NewThread("w")
	in.SetEnabled(false)
	th.Store64(addr, 1)
	if len(rec.events) != 0 {
		t.Error("disabled instrumenter delivered events")
	}
	in.SetEnabled(true)
	th.Store64(addr, 2)
	if len(rec.events) != 1 {
		t.Error("re-enabled instrumenter did not deliver")
	}
}

func TestWritesOnlyPolicy(t *testing.T) {
	in, rec, addr := setup(t, Policy{WritesOnly: true})
	th := in.NewThread("w")
	th.Store64(addr, 1)
	th.Load64(addr)
	th.Load64(addr)
	if len(rec.events) != 1 || !rec.events[0].isWrite {
		t.Errorf("events = %+v, want single write", rec.events)
	}
	if in.Suppressed() != 2 {
		t.Errorf("suppressed = %d, want 2", in.Suppressed())
	}
}

func TestWhitelistPolicy(t *testing.T) {
	in, rec, addr := setup(t, Policy{Whitelist: map[string]bool{"hot": true}})
	th := in.NewThread("w")
	th.SetScope("cold")
	th.Store64(addr, 1)
	th.SetScope("hot")
	th.Store64(addr, 2)
	if len(rec.events) != 1 {
		t.Fatalf("events = %d, want 1", len(rec.events))
	}
}

func TestBlacklistPolicy(t *testing.T) {
	in, rec, addr := setup(t, Policy{Blacklist: map[string]bool{"noisy": true}})
	th := in.NewThread("w")
	th.SetScope("noisy")
	th.Store64(addr, 1)
	th.SetScope("app")
	th.Store64(addr, 2)
	if len(rec.events) != 1 {
		t.Fatalf("events = %d, want 1", len(rec.events))
	}
}

func TestDedupWindow(t *testing.T) {
	in, rec, addr := setup(t, Policy{DedupWindow: 4})
	th := in.NewThread("w")
	// Same line, same type, back to back: only the first reported.
	th.Store64(addr, 1)
	th.Store64(addr+8, 2) // same line
	th.Store64(addr+16, 3)
	if len(rec.events) != 1 {
		t.Fatalf("events = %d, want 1 after dedup", len(rec.events))
	}
	// A read to the same line is a different (line, type) key.
	th.Load64(addr)
	if len(rec.events) != 2 {
		t.Fatalf("events = %d, want 2", len(rec.events))
	}
	// A different line passes.
	th.Store64(addr+128, 4)
	if len(rec.events) != 3 {
		t.Fatalf("events = %d, want 3", len(rec.events))
	}
	if in.Suppressed() != 2 {
		t.Errorf("suppressed = %d, want 2", in.Suppressed())
	}
}

func TestDedupWindowExpires(t *testing.T) {
	in, rec, addr := setup(t, Policy{DedupWindow: 2})
	th := in.NewThread("w")
	th.Store64(addr, 1)   // line A: reported
	th.Load64(addr + 128) // line B read
	th.Load64(addr + 192) // line C read
	th.Store64(addr+8, 2) // line A write again: window of 2 has B,C -> reported
	if len(rec.events) != 4 {
		t.Fatalf("events = %d, want 4", len(rec.events))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	in, _, _ := setup(t, Policy{})
	th := in.NewThread("w")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-heap access did not panic")
		}
	}()
	th.Store64(0x10, 1)
}

func TestAllocHelpers(t *testing.T) {
	in, _, _ := setup(t, Policy{})
	th := in.NewThread("w")
	addr, err := th.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := in.Heap().FindObject(addr)
	if !ok || o.Thread != th.ID() {
		t.Errorf("object = %+v", o)
	}
	off, err := th.AllocWithOffset(64, 24)
	if err != nil {
		t.Fatal(err)
	}
	if in.Heap().Geometry().Offset(off) != 24 {
		t.Errorf("offset = %d, want 24", in.Heap().Geometry().Offset(off))
	}
	if err := th.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64Instrumented(b *testing.B) {
	h := mem.MustNewHeap(mem.Config{Size: 1 << 20})
	in := New(h, nopSink{}, Policy{})
	addr, _ := h.Alloc(0, 4096, 0)
	th := in.NewThread("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Store64(addr+uint64(i%512)*8, uint64(i))
	}
}

func BenchmarkStore64Native(b *testing.B) {
	h := mem.MustNewHeap(mem.Config{Size: 1 << 20})
	in := New(h, nil, Policy{})
	addr, _ := h.Alloc(0, 4096, 0)
	th := in.NewThread("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Store64(addr+uint64(i%512)*8, uint64(i))
	}
}

type nopSink struct{}

func (nopSink) HandleAccess(int, uint64, uint64, bool) {}
