package instr

import (
	"testing"

	"predator/internal/mem"
	"predator/internal/obs"
)

// rangeElider elides reads (and optionally writes) inside [lo, hi).
type rangeElider struct {
	lo, hi    uint64
	andWrites bool
}

func (e *rangeElider) Elidable(addr, size uint64, isWrite bool) bool {
	if addr < e.lo || addr+size > e.hi {
		return false
	}
	return !isWrite || e.andWrites
}

func TestElisionDropsBeforeDelivery(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	in.SetElision(&rangeElider{lo: addr, hi: addr + 128})
	th := in.NewThread("w")

	th.Store64(addr, 7) // write: not covered (reads only)
	if v := th.Load64(addr); v != 7 {
		t.Fatalf("elided load returned %d, want 7 (memory access must still happen)", v)
	}
	th.Load64(addr + 200) // outside range: delivered

	if got := in.Elided(); got != 1 {
		t.Errorf("Elided = %d, want 1", got)
	}
	if len(rec.events) != 2 {
		t.Fatalf("delivered %d events, want 2 (write + out-of-range read)", len(rec.events))
	}
	if !rec.events[0].isWrite || rec.events[1].addr != addr+200 {
		t.Errorf("wrong events delivered: %+v", rec.events)
	}
}

func TestElisionModeAllDropsWrites(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	in.SetElision(&rangeElider{lo: addr, hi: addr + 128, andWrites: true})
	th := in.NewThread("w")
	th.Store64(addr, 1)
	th.Load64(addr)
	if in.Elided() != 2 || len(rec.events) != 0 {
		t.Errorf("elided=%d delivered=%d, want 2, 0", in.Elided(), len(rec.events))
	}
}

func TestElisionBeforePolicyAndDedup(t *testing.T) {
	// An elided event must count as elided, not suppressed, even when policy
	// or dedup would also have dropped it.
	in, _, addr := setup(t, Policy{WritesOnly: true, DedupWindow: 8})
	in.SetElision(&rangeElider{lo: addr, hi: addr + 128})
	th := in.NewThread("w")
	th.Load64(addr)
	th.Load64(addr)
	if in.Elided() != 2 {
		t.Errorf("Elided = %d, want 2", in.Elided())
	}
	if in.Suppressed() != 0 {
		t.Errorf("Suppressed = %d, want 0 (elision wins)", in.Suppressed())
	}
}

func TestElisionMetrics(t *testing.T) {
	h, err := mem.NewHeap(mem.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	in := New(h, rec, Policy{})
	o := obs.New(obs.NewRegistry(), nil)
	in.Observe(o)
	addr, err := h.Alloc(0, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.SetElision(&rangeElider{lo: addr, hi: addr + 128})
	th := in.NewThread("w")
	for i := 0; i < 10; i++ {
		th.Load64(addr)
	}
	in.FlushMetrics()
	c := o.Metrics().Counter("predator_events_elided_total", "")
	if c.Value() != 10 {
		t.Errorf("registry elided counter = %d, want 10", c.Value())
	}
}

func TestSetElisionNilUninstalls(t *testing.T) {
	in, rec, addr := setup(t, Policy{})
	in.SetElision(&rangeElider{lo: addr, hi: addr + 128})
	in.SetElision(nil)
	th := in.NewThread("w")
	th.Load64(addr)
	if in.Elided() != 0 || len(rec.events) != 1 {
		t.Errorf("elided=%d delivered=%d after uninstall, want 0, 1", in.Elided(), len(rec.events))
	}
}
