package callsite

import (
	"strings"
	"testing"
)

func captureHere() Stack { return Capture(0) }

func TestCaptureRecordsCaller(t *testing.T) {
	s := captureHere()
	if s.IsZero() {
		t.Fatal("captured stack is empty")
	}
	leaf := s.Leaf()
	if !strings.Contains(leaf.Function, "captureHere") {
		t.Errorf("leaf function = %q, want captureHere", leaf.Function)
	}
	if !strings.HasSuffix(leaf.File, "callsite_test.go") {
		t.Errorf("leaf file = %q, want callsite_test.go", leaf.File)
	}
	if leaf.Line <= 0 {
		t.Errorf("leaf line = %d, want positive", leaf.Line)
	}
}

func TestCaptureSkip(t *testing.T) {
	wrapper := func() Stack { return Capture(1) } // skip the wrapper itself
	s := wrapper()
	leaf := s.Leaf()
	if !strings.Contains(leaf.Function, "TestCaptureSkip") {
		t.Errorf("leaf = %q, want TestCaptureSkip frame", leaf.Function)
	}
}

func TestKeyStableAndDistinct(t *testing.T) {
	a1 := captureHere()
	a2 := captureHere()
	// Different call lines within the same function give different stacks;
	// but the same Stack value must hash identically.
	if a1.Key() != a1.Key() {
		t.Error("Key not deterministic")
	}
	if a1.Key() == a2.Key() {
		t.Error("distinct callsites produced equal keys")
	}
	same := func() (Stack, Stack) {
		s1 := captureHere()
		s2 := s1
		return s1, s2
	}
	s1, s2 := same()
	if s1.Key() != s2.Key() {
		t.Error("copied stack produced different key")
	}
}

func TestZeroStack(t *testing.T) {
	var s Stack
	if !s.IsZero() {
		t.Error("zero Stack not IsZero")
	}
	if s.Frames() != nil {
		t.Error("zero stack has frames")
	}
	if s.Leaf().Function != "<global>" {
		t.Errorf("zero Leaf = %v, want <global>", s.Leaf())
	}
	if got := s.Format("  "); !strings.Contains(got, "no callsite") {
		t.Errorf("Format = %q, want placeholder", got)
	}
	if s.String() != "<global>" {
		t.Errorf("String = %q", s.String())
	}
}

func TestFramesWalkOutward(t *testing.T) {
	s := captureHere()
	frames := s.Frames()
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want >= 2", len(frames))
	}
	if !strings.Contains(frames[0].Function, "captureHere") {
		t.Errorf("frame 0 = %q", frames[0].Function)
	}
	if !strings.Contains(frames[1].Function, "TestFramesWalkOutward") {
		t.Errorf("frame 1 = %q", frames[1].Function)
	}
}

func TestFormatMultiline(t *testing.T) {
	s := captureHere()
	out := s.Format("\t")
	lines := strings.Split(out, "\n")
	if len(lines) != s.Depth() {
		t.Errorf("Format produced %d lines, want %d", len(lines), s.Depth())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "\t") {
			t.Errorf("line %q missing indent", l)
		}
	}
}

func TestStringJoinsFrames(t *testing.T) {
	s := captureHere()
	if !strings.Contains(s.String(), " <- ") && s.Depth() > 1 {
		t.Errorf("String() = %q, want frame chain", s.String())
	}
}

func BenchmarkCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Capture(0)
	}
}

func BenchmarkLeafCached(b *testing.B) {
	s := Capture(0)
	s.Leaf() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Leaf()
	}
}
