// Package callsite captures and formats allocation callsites. It is the Go
// analog of PREDATOR's use of glibc's backtrace() inside its interposed
// malloc: every simulated-heap allocation records the stack of program
// locations that requested it, so heap findings can be reported at source
// level (paper §2.3.2, "Callsite Tracking for Heap Objects").
package callsite

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// MaxDepth bounds how many frames a captured stack retains.
const MaxDepth = 16

// Stack is a captured callsite stack: program counters from the allocation
// site outward, excluding the capture machinery itself.
type Stack struct {
	pcs [MaxDepth]uintptr
	n   int
}

// Capture records the caller's stack, skipping the given number of frames
// on top of Capture itself (skip=0 means the caller of Capture is the
// innermost recorded frame).
func Capture(skip int) Stack {
	var s Stack
	s.n = runtime.Callers(skip+2, s.pcs[:])
	return s
}

// Depth returns the number of captured frames.
func (s Stack) Depth() int { return s.n }

// IsZero reports whether the stack is empty (e.g. for global variables,
// which have no allocation callsite).
func (s Stack) IsZero() bool { return s.n == 0 }

// Key returns a comparable digest of the stack, suitable for grouping
// allocations from the same source location. Stacks with identical frames
// always produce equal keys.
func (s Stack) Key() uint64 {
	// FNV-1a over the raw PCs.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < s.n; i++ {
		pc := uint64(s.pcs[i])
		for j := 0; j < 8; j++ {
			h ^= pc & 0xff
			h *= prime64
			pc >>= 8
		}
	}
	return h
}

// Frame is one resolved stack frame.
type Frame struct {
	Function string
	File     string
	Line     int
}

// String formats the frame like the paper's reports: "file:line (function)".
func (f Frame) String() string {
	return fmt.Sprintf("%s:%d (%s)", f.File, f.Line, f.Function)
}

var frameCache sync.Map // uintptr -> Frame

// Frames resolves the stack's program counters to source locations. Results
// are cached process-wide because reports resolve the same hot callsites
// repeatedly.
func (s Stack) Frames() []Frame {
	if s.n == 0 {
		return nil
	}
	out := make([]Frame, 0, s.n)
	frames := runtime.CallersFrames(s.pcs[:s.n])
	for {
		fr, more := frames.Next()
		out = append(out, Frame{Function: fr.Function, File: fr.File, Line: fr.Line})
		if !more {
			break
		}
	}
	return out
}

// Leaf resolves just the innermost frame, the usual one-line attribution.
func (s Stack) Leaf() Frame {
	if s.n == 0 {
		return Frame{Function: "<global>", File: "<none>", Line: 0}
	}
	if v, ok := frameCache.Load(s.pcs[0]); ok {
		return v.(Frame)
	}
	frames := runtime.CallersFrames(s.pcs[:1])
	fr, _ := frames.Next()
	f := Frame{Function: fr.Function, File: fr.File, Line: fr.Line}
	frameCache.Store(s.pcs[0], f)
	return f
}

// Format renders the whole stack, one frame per line with the given indent,
// trimming frames below main/testing harness noise is left to callers.
func (s Stack) Format(indent string) string {
	frames := s.Frames()
	if len(frames) == 0 {
		return indent + "<no callsite: global or untracked object>"
	}
	var b strings.Builder
	for i, f := range frames {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(indent)
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders the stack on one line, innermost frame first.
func (s Stack) String() string {
	frames := s.Frames()
	if len(frames) == 0 {
		return "<global>"
	}
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = fmt.Sprintf("%s:%d", f.File, f.Line)
	}
	return strings.Join(parts, " <- ")
}
