package predator_test

import (
	"testing"
	"time"

	predator "predator"
	"predator/internal/harness"
	"predator/internal/obs/spans"
)

// TestSpanOverhead is the span tracer's half of the observability performance
// contract: attaching a tracer to the observer must cost less than 5% on the
// access hot path relative to the same observer without one. Spans are
// created only at pipeline phase boundaries — never per access — so the hot
// loop pays nothing beyond the observer it already carries. Interleaved
// min-of-trials measurement filters scheduler noise, and the comparison
// retries before declaring failure so a single noisy trial cannot fail the
// suite.
func TestSpanOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const trials, maxAttempts, limit = 5, 3, 1.05
	withSpans := func() *predator.Observer {
		o := predator.NewObserver(nil)
		o.SetSpans(spans.New(spans.Config{}))
		return o
	}
	for attempt := 1; ; attempt++ {
		base, traced := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < trials; i++ {
			if d := hotLoop(t, predator.NewObserver(nil)); d < base {
				base = d
			}
			if d := hotLoop(t, withSpans()); d < traced {
				traced = d
			}
		}
		ratio := float64(traced) / float64(base)
		t.Logf("attempt %d: base=%v traced=%v ratio=%.3f", attempt, base, traced, ratio)
		if ratio <= limit {
			return
		}
		if attempt >= maxAttempts {
			t.Fatalf("span tracer overhead %.1f%% exceeds %.0f%% (base=%v traced=%v)",
				(ratio-1)*100, (limit-1)*100, base, traced)
		}
	}
}

// TestSpanTreeDeterministic is the reproducibility half of the span
// contract: two deterministic runs of the same pipeline produce identical
// span trees — same parent/child structure, same attribute counters, and
// (because deterministic tracers derive IDs from a seeded generator) the
// same trace and span IDs.
func TestSpanTreeDeterministic(t *testing.T) {
	w, ok := harness.Get("histogram")
	if !ok {
		t.Fatal("histogram workload not registered")
	}
	runOnce := func() (spans.TraceID, []spans.Data) {
		o := predator.NewObserver(nil)
		tr := spans.New(spans.Config{Deterministic: true})
		o.SetSpans(tr)
		root := tr.Start("cli.run", nil)
		root.SetLabel("tool", "test")
		_, err := harness.Execute(w, harness.Options{
			Mode:          harness.ModePredict,
			Threads:       4,
			Deterministic: true,
			Observer:      o,
			Span:          root,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		return tr.TraceID(), tr.Snapshot()
	}
	idA, a := runOnce()
	idB, b := runOnce()
	if idA != idB {
		t.Errorf("deterministic trace IDs differ: %s vs %s", idA, idB)
	}
	if len(a) == 0 {
		t.Fatal("deterministic run produced no spans")
	}
	sigA, sigB := spans.Signature(a), spans.Signature(b)
	if sigA != sigB {
		t.Errorf("span trees differ across deterministic runs:\n--- run A ---\n%s--- run B ---\n%s", sigA, sigB)
	}
	// The tree must cover the pipeline, not just the root.
	names := map[string]bool{}
	for _, d := range a {
		names[d.Name] = true
	}
	for _, want := range []string{"cli.run", "harness.setup", "harness.workload", "report.collect"} {
		if !names[want] {
			t.Errorf("span tree missing %s phase:\n%s", want, sigA)
		}
	}
}
