package predator_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestE2EFindingToTraceWaterfall exercises the whole span-propagation path
// through the real binaries: predator runs a workload with fleet streaming
// on, ships its findings and its span trace to a live predfleet, and every
// ingested finding can then be followed — finding provenance span_id →
// /api/v1/traces detail containing that span → the /dash waterfall page for
// the same trace.
func TestE2EFindingToTraceWaterfall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLIs")
	}
	tmp := t.TempDir()
	build := func(name, pkg string) string {
		t.Helper()
		bin := filepath.Join(tmp, name)
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	predatorBin := build("predator", "./cmd/predator")
	fleetBin := build("predfleet", "./cmd/predfleet")

	// Boot predfleet on a free port and scrape the bound address off stdout.
	fleetCmd := exec.Command(fleetBin,
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(tmp, "store"),
		"-tokens", "acme=s3cret",
		"-no-sync")
	stdout, err := fleetCmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	fleetCmd.Stderr = os.Stderr
	if err := fleetCmd.Start(); err != nil {
		t.Fatalf("starting predfleet: %v", err)
	}
	defer func() {
		_ = fleetCmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = fleetCmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = fleetCmd.Process.Kill()
			<-done
		}
	}()
	var base string
	sc := bufio.NewScanner(stdout)
	bootRE := regexp.MustCompile(`serving on (http://[^ ]+) `)
	for sc.Scan() {
		if m := bootRE.FindStringSubmatch(sc.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("predfleet never announced its address (scan err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// One agent run with fleet streaming on: the tracer rides along
	// automatically and ships its snapshot beside the findings.
	const runID = "e2erun"
	agent := exec.Command(predatorBin,
		"-workload", "histogram", "-threads", "4", "-mode", "predict",
		"-fleet-addr", strings.TrimPrefix(base, "http://"),
		"-fleet-token", "s3cret",
		"-fleet-project", "db",
		"-fleet-run", runID)
	if out, err := agent.CombinedOutput(); err != nil {
		t.Fatalf("predator run: %v\n%s", err, out)
	}

	get := func(path string) []byte {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer s3cret")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, body)
		}
		return body
	}

	// 1. The ingested findings carry provenance span IDs.
	var findings struct {
		Count    int `json:"count"`
		Findings []struct {
			Provenance *struct {
				SpanID string `json:"span_id"`
			} `json:"provenance"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(get("/api/v1/findings?project=db"), &findings); err != nil {
		t.Fatalf("findings decode: %v", err)
	}
	if findings.Count == 0 {
		t.Fatal("no findings ingested")
	}
	var spanID string
	for _, f := range findings.Findings {
		if f.Provenance != nil && f.Provenance.SpanID != "" {
			spanID = f.Provenance.SpanID
			break
		}
	}
	if spanID == "" {
		t.Fatal("no ingested finding carries a provenance span_id")
	}

	// 2. The run handle resolves to the agent-side trace, and the finding's
	// span is in it.
	var traces struct {
		Trace *struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				SpanID string `json:"span_id"`
				Name   string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(get("/api/v1/traces?project=db&id="+runID), &traces); err != nil {
		t.Fatalf("traces decode: %v", err)
	}
	if traces.Trace == nil || len(traces.Trace.Spans) == 0 {
		t.Fatal("run handle did not resolve to a span trace")
	}
	found := false
	for _, s := range traces.Trace.Spans {
		if s.SpanID == spanID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("finding's span %s not present in the run's trace %s", spanID, traces.Trace.TraceID)
	}

	// 3. The dashboard waterfall for that trace renders.
	page := string(get(fmt.Sprintf("/dash/db/trace/%s?token=s3cret", traces.Trace.TraceID)))
	for _, want := range []string{"<svg", "cli.run", "harness.workload"} {
		if !strings.Contains(page, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, page)
		}
	}
}
