package predator_test

import (
	"testing"
	"time"

	predator "predator"
)

// hotLoop drives one thread through a write-heavy loop that keeps the
// detector's full pipeline busy (tracked lines, sampling, invalidation
// recording) and returns the per-access cost.
func hotLoop(t testing.TB, o *predator.Observer) time.Duration {
	return hotLoopCfg(t, o, nil)
}

// hotLoopCfg is hotLoop with a runtime-config override (the flight-recorder
// overhead contract compares recording-on against recording-off).
func hotLoopCfg(t testing.TB, o *predator.Observer, rc *predator.RuntimeConfig) time.Duration {
	t.Helper()
	d, err := predator.New(predator.Options{HeapSize: 1 << 22, Observer: o, Runtime: rc})
	if err != nil {
		t.Fatal(err)
	}
	th := d.Thread("w")
	addr, err := th.Alloc(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500_000
	start := time.Now()
	for i := 0; i < n; i++ {
		th.Store64(addr+uint64(i%8192)*8, uint64(i))
	}
	elapsed := time.Since(start) / n
	if rc != nil && rc.FlightDepth != predator.FlightDisabled && d.Stats().TrackedLines == 0 {
		t.Fatal("hot loop tracked no lines; the flight-overhead measurement needs armed recorders")
	}
	return elapsed
}

// TestNoSinkObserverOverhead is the observability subsystem's performance
// contract: attaching an observer with a metrics registry but no event sink
// must cost less than 5% on the access hot path relative to the unobserved
// default. Interleaved min-of-trials measurement filters scheduler noise,
// and the comparison retries before declaring failure so a single noisy
// trial cannot fail the suite.
func TestNoSinkObserverOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const trials, maxAttempts, limit = 5, 3, 1.05
	for attempt := 1; ; attempt++ {
		base, observed := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < trials; i++ {
			if d := hotLoop(t, nil); d < base {
				base = d
			}
			if d := hotLoop(t, predator.NewObserver(nil)); d < observed {
				observed = d
			}
		}
		ratio := float64(observed) / float64(base)
		t.Logf("attempt %d: base=%v observed=%v ratio=%.3f", attempt, base, observed, ratio)
		if ratio <= limit {
			return
		}
		if attempt >= maxAttempts {
			t.Fatalf("no-sink observer overhead %.1f%% exceeds %.0f%% (base=%v observed=%v)",
				(ratio-1)*100, (limit-1)*100, base, observed)
		}
	}
}

// TestSelfProfileOverhead extends the contract to runtime self-profiling:
// when a diagnostics server is attached (predator -diag-addr) the runtime
// times one access per sync batch and maintains an overhead meter. That
// sampled instrumentation must also stay under 5% relative to the plain
// metrics observer, so leaving -diag-addr unset never pays for it and
// enabling it costs next to nothing.
func TestSelfProfileOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const trials, maxAttempts, limit = 5, 3, 1.05
	withSelf := func() *predator.Observer {
		o := predator.NewObserver(nil)
		o.EnableSelfProfile()
		return o
	}
	for attempt := 1; ; attempt++ {
		base, profiled := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < trials; i++ {
			if d := hotLoop(t, predator.NewObserver(nil)); d < base {
				base = d
			}
			if d := hotLoop(t, withSelf()); d < profiled {
				profiled = d
			}
		}
		ratio := float64(profiled) / float64(base)
		t.Logf("attempt %d: base=%v profiled=%v ratio=%.3f", attempt, base, profiled, ratio)
		if ratio <= limit {
			return
		}
		if attempt >= maxAttempts {
			t.Fatalf("self-profile overhead %.1f%% exceeds %.0f%% (base=%v profiled=%v)",
				(ratio-1)*100, (limit-1)*100, base, profiled)
		}
	}
}

// TestFlightRecorderOverhead extends the contract to the flight recorder:
// every tracked line in the hot loop carries an armed ring recorder (the
// default), and recording one packed word per sampled access must stay
// within the same 5% envelope relative to recording disabled. This is the
// arming rule's performance half: recorders only exist past
// TrackingThreshold, and even then cost one atomic store per access.
func TestFlightRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const trials, maxAttempts, limit = 5, 3, 1.05
	off := predator.DefaultRuntimeConfig()
	off.FlightDepth = predator.FlightDisabled
	on := predator.DefaultRuntimeConfig() // FlightDepth 0 = recording on at default depth
	for attempt := 1; ; attempt++ {
		base, recording := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < trials; i++ {
			if d := hotLoopCfg(t, nil, &off); d < base {
				base = d
			}
			if d := hotLoopCfg(t, nil, &on); d < recording {
				recording = d
			}
		}
		ratio := float64(recording) / float64(base)
		t.Logf("attempt %d: base=%v recording=%v ratio=%.3f", attempt, base, recording, ratio)
		if ratio <= limit {
			return
		}
		if attempt >= maxAttempts {
			t.Fatalf("flight recorder overhead %.1f%% exceeds %.0f%% (base=%v recording=%v)",
				(ratio-1)*100, (limit-1)*100, base, recording)
		}
	}
}

// BenchmarkHotPathNilObserver and BenchmarkHotPathMetricsObserver publish
// the absolute numbers behind the overhead contract.
func BenchmarkHotPathNilObserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(hotLoop(b, nil).Nanoseconds()), "ns/access")
	}
}

func BenchmarkHotPathMetricsObserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(hotLoop(b, predator.NewObserver(nil)).Nanoseconds()), "ns/access")
	}
}
