// Package predator is a Go implementation of PREDATOR, the predictive false
// sharing detector of Liu, Tian, Hu and Berger (PPoPP 2014). It detects
// false sharing that actually happens in a run — threads updating distinct
// words of one cache line — and, uniquely, *predicts* false sharing that
// would appear under a doubled hardware cache line size or a different
// object placement, by tracking virtual cache lines.
//
// The package is a facade over the building blocks in internal/: a simulated
// heap with a Hoard-style per-thread allocator (internal/mem), shadow
// metadata (internal/shadow), the detection and prediction runtime
// (internal/core, internal/detect, internal/predict), and the
// instrumentation front-end whose typed accessors stand in for the paper's
// LLVM instrumentation pass (internal/instr).
//
// Basic use:
//
//	d, _ := predator.New(predator.Options{})
//	t1 := d.Thread("worker-1")
//	addr, _ := t1.Alloc(64)
//	// ... threads access the simulated heap via t1.Load64/Store64 ...
//	rep := d.Report()
//	for _, f := range rep.FalseSharing() { fmt.Println(f.Format(d.Geometry())) }
package predator

import (
	"fmt"
	"io"

	"predator/internal/cacheline"
	"predator/internal/core"
	"predator/internal/fixer"
	"predator/internal/instr"
	"predator/internal/layout"
	"predator/internal/mem"
	"predator/internal/obs"
	"predator/internal/obs/traceout"
	"predator/internal/report"
	"predator/internal/resilience"
)

// Re-exported types: the public API surface of the detector.
type (
	// Thread is a logical thread's handle: typed heap accessors plus
	// allocation helpers. Create one per goroutine with Detector.Thread.
	Thread = instr.Thread
	// Policy selects which accesses are instrumented (paper §2.4.2).
	Policy = instr.Policy
	// Report is a ranked collection of findings.
	Report = report.Report
	// Finding is one detected or predicted sharing problem.
	Finding = report.Finding
	// WordDetail is one word's access summary inside a finding.
	WordDetail = report.WordDetail
	// Sharing classifies a finding (false, true, mixed).
	Sharing = report.Sharing
	// Source says whether a finding was observed or predicted.
	Source = report.Source
	// Object describes a simulated-heap object or registered global.
	Object = mem.Object
	// Heap is the simulated heap.
	Heap = mem.Heap
	// Geometry is the cache line geometry.
	Geometry = cacheline.Geometry
	// RuntimeConfig tunes the detection runtime thresholds.
	RuntimeConfig = core.Config
	// Problem groups a report's findings by affected object.
	Problem = report.Problem
	// Advice is one fix prescription produced by Suggest.
	Advice = fixer.Advice
	// StructLayout models a C-style struct for field-level advice.
	StructLayout = layout.Struct
	// LayoutField is one struct member description.
	LayoutField = layout.Field
	// Observer carries the metrics registry and event sink the detector
	// reports into (see internal/obs).
	Observer = obs.Observer
	// Metrics is a registry of named counters, gauges, and histograms.
	Metrics = obs.Registry
	// Event is one lifecycle trace event.
	Event = obs.Event
	// EventSink receives lifecycle trace events.
	EventSink = obs.Sink
	// Provenance explains how a finding was established: when the line was
	// flagged, the recorded interleaving, and the verification chain.
	Provenance = report.Provenance
)

// FlightDisabled, assigned to RuntimeConfig.FlightDepth, turns flight
// recording (and with it finding provenance and timeline export) off.
const FlightDisabled = core.FlightDisabled

// NewObserver builds an Observer over a fresh metrics registry. A nil sink
// collects metrics without tracing events; see NewJSONLinesSink for a sink
// that streams events as JSON lines.
func NewObserver(sink EventSink) *Observer { return obs.New(obs.NewRegistry(), sink) }

// NewResilientObserver is NewObserver with the sink wrapped in a panic
// isolation boundary (see internal/resilience): a sink that panics more than
// resilience.DefaultPanicLimit times is quarantined — after one final
// sink_quarantined event — while detection continues. Use it whenever the
// sink is not fully trusted (plugins, network exporters).
func NewResilientObserver(name string, sink EventSink) *Observer {
	return obs.New(obs.NewRegistry(), resilience.GuardSink(name, sink, 0, nil))
}

// NewJSONLinesSink returns a sink encoding each event as one JSON object per
// line. Call Flush before closing the underlying writer.
func NewJSONLinesSink(w io.Writer) *obs.JSONLines { return obs.NewJSONLines(w) }

// NewLayout lays out struct fields under C alignment rules; pass the result
// in SuggestOptions.Layouts keyed by object start address for field-level
// fix advice.
func NewLayout(name string, fields ...LayoutField) (*StructLayout, error) {
	return layout.New(name, fields...)
}

// SuggestOptions configures fix-advice generation.
type SuggestOptions struct {
	// Layouts maps object start addresses to their element layouts.
	Layouts map[uint64]*StructLayout
}

// Suggest turns a report's false sharing problems into concrete fix
// prescriptions (the paper's §6 "Suggest Fixes" extension), ranked like the
// report.
func (d *Detector) Suggest(rep *Report, opts SuggestOptions) []Advice {
	return fixer.Suggest(rep, fixer.Options{
		Geometry: d.Geometry(),
		Layouts:  opts.Layouts,
	})
}

// Re-exported classification constants.
const (
	SharingNone  = report.SharingNone
	SharingFalse = report.SharingFalse
	SharingTrue  = report.SharingTrue
	SharingMixed = report.SharingMixed

	SourceObserved           = report.SourceObserved
	SourcePredictedAlignment = report.SourcePredictedAlignment
	SourcePredictedLineSize  = report.SourcePredictedLineSize
)

// Options configures a Detector. The zero value selects the paper's
// defaults: a 256 MiB simulated heap at 0x400000000 with 64-byte lines,
// tracking threshold 100, 1% sampling, prediction enabled.
type Options struct {
	// HeapSize is the simulated heap size in bytes (default 256 MiB).
	HeapSize uint64
	// HeapBase is the simulated heap start address (default 0x400000000).
	HeapBase uint64
	// LineSize is the physical cache line size (default 64).
	LineSize int
	// Runtime overrides the detection thresholds; a zero value selects
	// core.DefaultConfig(). To disable prediction, set Runtime explicitly
	// (e.g. start from DefaultRuntimeConfig and flip Prediction).
	Runtime *RuntimeConfig
	// Policy selects which accesses are instrumented.
	Policy Policy
	// Uninstrumented builds a Detector whose accessors touch memory but
	// report nothing — the "Original" baseline for overhead measurement.
	Uninstrumented bool
	// Observer, when non-nil, receives the detector's metrics and — when
	// it has an event sink — lifecycle trace events. Nil (the default)
	// leaves the hot path uninstrumented.
	Observer *Observer
	// Strict selects the out-of-heap access policy. Nil (the default) and
	// &true panic on any out-of-heap access — workload bugs fail loudly.
	// Point it at false for the resilience layer's fault-tolerant mode:
	// out-of-heap accesses become recoverable typed faults
	// (instr.ErrOutOfHeap) counted per thread, loads return zero, stores
	// are dropped, and detection continues.
	Strict *bool
}

// DefaultRuntimeConfig returns the paper's default thresholds.
func DefaultRuntimeConfig() RuntimeConfig { return core.DefaultConfig() }

// Detector owns a simulated heap, the PREDATOR runtime attached to it, and
// the instrumentation front-end.
type Detector struct {
	heap *mem.Heap
	rt   *core.Runtime
	in   *instr.Instrumenter
	obs  *Observer
}

// New builds a Detector.
func New(opts Options) (*Detector, error) {
	h, err := mem.NewHeap(mem.Config{
		Base:     opts.HeapBase,
		Size:     opts.HeapSize,
		LineSize: opts.LineSize,
	})
	if err != nil {
		return nil, err
	}
	h.Observe(opts.Observer)
	d := &Detector{heap: h, obs: opts.Observer}
	if !opts.Uninstrumented {
		cfg := core.DefaultConfig()
		if opts.Runtime != nil {
			cfg = *opts.Runtime
		}
		if opts.Observer != nil {
			cfg.Observer = opts.Observer
		}
		rt, err := core.NewRuntime(h, cfg)
		if err != nil {
			return nil, err
		}
		d.rt = rt
		d.in = instr.New(h, rt, opts.Policy)
	} else {
		d.in = instr.New(h, nil, opts.Policy)
	}
	d.in.Observe(opts.Observer)
	if opts.Strict != nil {
		d.in.SetStrict(*opts.Strict)
	}
	return d, nil
}

// Observer returns the detector's observer, or nil when unobserved.
func (d *Detector) Observer() *Observer { return d.obs }

// WriteMetrics writes the observer's metrics in Prometheus text format,
// flushing batched hot-path counters first so the snapshot is exact. It is a
// no-op (and returns nil) for unobserved detectors.
func (d *Detector) WriteMetrics(w io.Writer) error {
	if d.obs == nil {
		return nil
	}
	d.Stats()
	return d.obs.Metrics().WritePrometheus(w)
}

// WriteTimeline renders the detector's flight-recorder contents as Chrome
// trace-event / Perfetto JSON (load the output in ui.perfetto.dev): one track
// per thread with its recorded accesses and invalidation marks, plus the
// detector's phase spans. It errors for uninstrumented detectors and when
// flight recording was disabled (RuntimeConfig.FlightDepth = FlightDisabled).
func (d *Detector) WriteTimeline(w io.Writer) error {
	if d.rt == nil {
		return fmt.Errorf("predator: uninstrumented detector has no timeline")
	}
	dump := d.rt.FlightDump(0, -1)
	if dump == nil {
		return fmt.Errorf("predator: flight recording disabled (FlightDepth = FlightDisabled)")
	}
	return traceout.WriteTimeline(w, dump, d.in.ThreadNames())
}

// Thread mints a handle for one logical thread. Each goroutine must use its
// own Thread.
func (d *Detector) Thread(name string) *Thread { return d.in.NewThread(name) }

// Heap exposes the simulated heap (globals registration, object queries).
func (d *Detector) Heap() *Heap { return d.heap }

// Geometry returns the detector's cache line geometry.
func (d *Detector) Geometry() Geometry { return d.heap.Geometry() }

// Instrumented reports whether accesses are delivered to a runtime.
func (d *Detector) Instrumented() bool { return d.rt != nil }

// SetEnabled toggles instrumentation delivery at runtime (no-op for
// uninstrumented detectors).
func (d *Detector) SetEnabled(v bool) { d.in.SetEnabled(v) }

// Report distills the run into ranked findings. For uninstrumented
// detectors it returns an empty report.
func (d *Detector) Report() *Report {
	if d.rt == nil {
		return &Report{Geometry: d.heap.Geometry()}
	}
	return d.rt.Report()
}

// Stats summarizes detector activity.
type Stats struct {
	Accesses             uint64 // events delivered to the runtime
	Writes               uint64
	TrackedLines         int
	VirtualLines         int
	Invalidations        uint64 // invalidations observed on tracked lines
	VirtualInvalidations uint64 // invalidations verified on virtual lines
	SampledAccesses      uint64 // accesses recorded in detail (post-sampling)
	Delivered            uint64 // events delivered by the instrumentation front-end
	Suppressed           uint64 // events dropped by instrumentation policy
	HeapLive             uint64 // live simulated-heap bytes
	HeapUsed             uint64 // carved simulated-heap bytes

	// Resilience accounting.
	Faults            uint64 // out-of-heap accesses absorbed (non-strict mode)
	DegradedLines     int    // tracked lines degraded to invalidation-counting-only
	Evictions         uint64 // lines degraded to admit newer lines
	VirtualRejections uint64 // virtual lines refused by MaxVirtualLines
	Degraded          bool   // any detection detail shed under resource pressure
}

// Stats returns a snapshot of detector counters, flushing batched hot-path
// metric pushes so the observer's registry is exact afterwards.
func (d *Detector) Stats() Stats {
	d.in.FlushMetrics()
	hs := d.heap.Stats()
	s := Stats{
		Delivered:  d.in.Delivered(),
		Suppressed: d.in.Suppressed(),
		HeapLive:   hs.LiveBytes,
		HeapUsed:   hs.UsedBytes,
		Faults:     d.in.Faults(),
	}
	if d.rt != nil {
		rs := d.rt.Stats()
		s.Accesses = rs.Accesses
		s.Writes = rs.Writes
		s.TrackedLines = rs.TrackedLines
		s.VirtualLines = rs.VirtualLines
		s.Invalidations = rs.Invalidations
		s.VirtualInvalidations = rs.VirtualInvalidations
		s.SampledAccesses = rs.SampledAccesses
		s.DegradedLines = rs.DegradedLines
		s.Evictions = rs.Evictions
		s.VirtualRejections = rs.VirtualRejections
		s.Degraded = rs.Degraded
	}
	return s
}
