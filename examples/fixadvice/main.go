// Fix prescriptions (the paper's §6 "Suggest Fixes" future work): describe
// your struct's layout to the detector and it maps hot words back to field
// names and prints the exact padded declaration that removes the sharing.
//
//	go run ./examples/fixadvice
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

import "predator"

func main() {
	cfg := predator.DefaultRuntimeConfig()
	cfg.TrackingThreshold = 10
	cfg.PredictionThreshold = 20
	cfg.ReportThreshold = 100
	cfg.SampleWindow = 0
	d, err := predator.New(predator.Options{HeapSize: 8 << 20, Runtime: &cfg})
	if err != nil {
		log.Fatal(err)
	}

	// A worker-stats struct, one instance per thread, packed in an array —
	// the single most common false sharing bug in the wild.
	stats, err := predator.NewLayout("worker_stats",
		predator.LayoutField{Name: "requests", Size: 8},
		predator.LayoutField{Name: "errors", Size: 8},
		predator.LayoutField{Name: "latency_sum", Size: 8},
	)
	if err != nil {
		log.Fatal(err)
	}

	const workers = 4
	main := d.Thread("main")
	arr, err := main.AllocWithOffset(stats.Size()*workers, 0)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := d.Thread(fmt.Sprintf("worker-%d", w))
		wg.Add(1)
		go func(th *predator.Thread, slot uint64) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				th.Store64(slot, uint64(i))      // requests++
				th.Store64(slot+16, uint64(i)*3) // latency_sum += ...
				if i%16 == 15 {
					runtime.Gosched() // keep goroutines interleaving on single-CPU hosts
				}
			}
		}(th, arr+uint64(w)*stats.Size())
	}
	wg.Wait()

	rep := d.Report()
	advice := d.Suggest(rep, predator.SuggestOptions{
		Layouts: map[uint64]*predator.StructLayout{arr: stats},
	})
	if len(advice) == 0 {
		fmt.Println("no problems found")
		return
	}
	for i, a := range advice {
		fmt.Printf("=== prescription %d (%s) ===\n%s\n\n", i+1, a.Kind, a.Text)
	}
}
