// Binary-instrumentation-style detection (paper §5.1): instead of calling
// instrumented accessors explicitly, this example assembles a tiny program
// for the repository's register VM, which inspects every executed load and
// store and reports it to PREDATOR automatically — the Valgrind/Pin model.
// It also demonstrates §2.2's stack policy: the counter loop run against
// each thread's private stack is invisible by default and only appears when
// stack instrumentation is switched on.
//
//	go run ./examples/vmdetect
package main

import (
	"fmt"
	"log"
	"sync"

	"predator/internal/core"
	"predator/internal/instr"
	"predator/internal/mem"
	"predator/internal/vm"
)

// counter increments mem64[r1] r2 times.
const counter = `
	li   r3, 0
loop:
	ld   r4, r1, 0
	addi r4, r4, 1
	st   r4, r1, 0
	addi r3, r3, 1
	blt  r3, r2, loop
	halt
`

// stackCounter does the same against the thread's own stack (r15).
const stackCounter = `
	li   r3, 0
loop:
	ld   r4, r15, 0
	addi r4, r4, 1
	st   r4, r15, 0
	addi r3, r3, 1
	blt  r3, r2, loop
	halt
`

func runPair(instrumentStack bool, program string, shared bool) {
	h, err := mem.NewHeap(mem.Config{Size: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.NewRuntime(h, core.Config{
		TrackingThreshold:   10,
		PredictionThreshold: 20,
		ReportThreshold:     50,
		Prediction:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	in := instr.New(h, rt, instr.Policy{})
	machine := vm.New(h, vm.Config{InstrumentStack: instrumentStack, YieldEvery: 16})
	prog := vm.MustAssemble(program)

	main := in.NewThread("main")
	obj, err := h.AllocWithOffset(main.ID(), 64, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		th := in.NewThread(fmt.Sprintf("vm-%d", w))
		word := obj + uint64(w)*8
		wg.Add(1)
		go func(th *instr.Thread, word uint64) {
			defer wg.Done()
			if _, err := machine.Run(th, prog, int64(word), 20000); err != nil {
				log.Fatal(err)
			}
		}(th, word)
	}
	wg.Wait()
	stats := rt.Stats()
	fmt.Printf("  accesses seen by runtime: %-7d false sharing problems: %d\n",
		stats.Accesses, len(rt.Report().FalseSharing()))
	_ = shared
}

func main() {
	fmt.Println("heap counters in one cache line (classic false sharing):")
	runPair(false, counter, true)

	fmt.Println("same loop against private stacks, stack instrumentation OFF (paper default):")
	runPair(false, stackCounter, false)

	fmt.Println("same loop, stack instrumentation ON (paper: 'can always be turned on'):")
	runPair(true, stackCounter, false)
}
