// Doubled-line-size prediction (§3, Figure 3b): code that is perfectly
// padded for 64-byte cache lines can still falsely share on hardware with
// 128-byte lines (e.g. Apple M-series or POWER9). This example pads two
// threads' counters exactly one 64-byte line apart — clean on today's
// machine — and shows PREDATOR predicting the problem a larger-line machine
// would have, verified on a virtual 128-byte line.
//
//	go run ./examples/biglines
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

import "predator"

func main() {
	cfg := predator.DefaultRuntimeConfig()
	cfg.TrackingThreshold = 20
	cfg.PredictionThreshold = 50
	cfg.ReportThreshold = 200
	cfg.SampleWindow = 0
	d, err := predator.New(predator.Options{HeapSize: 8 << 20, Runtime: &cfg})
	if err != nil {
		log.Fatal(err)
	}

	main := d.Thread("main")
	// Two counters, 64 bytes apart, line-aligned: "properly padded" for
	// 64-byte lines.
	block, err := main.AllocWithOffset(128, 0)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i, t := range []*predator.Thread{d.Thread("even"), d.Thread("odd")} {
		wg.Add(1)
		go func(t *predator.Thread, word uint64) {
			defer wg.Done()
			for n := 0; n < 50000; n++ {
				t.Store64(word, uint64(n))
				if n%64 == 63 {
					runtime.Gosched() // keep goroutines interleaving on single-CPU hosts
				}
			}
		}(t, block+uint64(i)*64)
	}
	wg.Wait()

	rep := d.Report()
	fmt.Printf("observed (64-byte line) false sharing findings: %d\n", len(rep.Observed()))
	predicted := rep.Predicted()
	fmt.Printf("predicted findings: %d\n\n", len(predicted))
	for _, f := range predicted {
		if f.Source == predator.SourcePredictedLineSize {
			fmt.Println("On hardware with 128-byte cache lines this pair WOULD falsely share:")
			fmt.Println(f.Format(d.Geometry()))
			return
		}
	}
	fmt.Println("(no doubled-line prediction; try more iterations)")
}
