// The Boost spinlock-pool case study (§4.1.2): boost::detail::spinlock_pool
// packs 41 four-byte spinlocks into one array, so threads spinning on
// different locks invalidate each other's cache lines. This example builds
// the pool directly on the public API (rather than the packaged workload),
// shows PREDATOR pinpointing the pool object, then pads the locks apart and
// shows the report come back clean — the fix that bought 40% in the paper.
//
//	go run ./examples/spinlockpool
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

import "predator"

const (
	locks   = 41
	threads = 8
	ops     = 20000
)

// run builds a lock pool with the given per-lock stride and contends on it.
func run(stride uint64) (*predator.Report, predator.Geometry, error) {
	cfg := predator.DefaultRuntimeConfig()
	cfg.TrackingThreshold = 20
	cfg.PredictionThreshold = 50
	cfg.ReportThreshold = 200
	cfg.SampleWindow = 0
	d, err := predator.New(predator.Options{HeapSize: 8 << 20, Runtime: &cfg})
	if err != nil {
		return nil, predator.Geometry{}, err
	}
	main := d.Thread("main")
	pool, err := main.AllocWithOffset(stride*locks, 0)
	if err != nil {
		return nil, predator.Geometry{}, err
	}
	var shadow [locks]sync.Mutex // real mutual exclusion behind the simulated locks

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		th := d.Thread(fmt.Sprintf("worker-%d", id))
		wg.Add(1)
		go func(th *predator.Thread, id int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				// Each thread guards its own objects: a stable set of
				// pool entries, several per cache line when packed.
				lock := (id*4 + op%4) % locks
				addr := pool + uint64(lock)*stride
				shadow[lock].Lock()
				for th.Load32(addr) != 0 { // spin (never actually spins here)
				}
				th.Store32(addr, 1)
				th.Store32(addr, 0)
				shadow[lock].Unlock()
				if op%32 == 31 {
					runtime.Gosched() // keep goroutines interleaving on single-CPU hosts
				}
			}
		}(th, id)
	}
	wg.Wait()
	return d.Report(), d.Geometry(), nil
}

func main() {
	fmt.Println("== packed pool (boost::detail::spinlock_pool layout) ==")
	rep, geom, err := run(4) // 16 locks per 64-byte line
	if err != nil {
		log.Fatal(err)
	}
	fs := rep.FalseSharing()
	fmt.Printf("false sharing problems: %d\n\n", len(fs))
	if len(fs) > 0 {
		fmt.Println(fs[0].Format(geom))
	}

	fmt.Println("== padded pool (one lock per 128 bytes) ==")
	rep, _, err = run(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("false sharing problems: %d\n", len(rep.FalseSharing()))
}
