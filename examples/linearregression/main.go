// The paper's case study (§4.1.3): the Phoenix linear_regression benchmark
// whose false sharing is invisible at the tested object placement and only
// PREDATOR's prediction can find. This example reproduces the whole story:
//
//  1. run the buggy benchmark at the clean placement — plain detection
//     (PREDATOR-NP) sees nothing;
//
//  2. full PREDATOR predicts the latent problem and prints the Figure 5
//     style report;
//
//  3. the placement sweep (Figure 2) shows why: shift the object's start by
//     24 bytes and the same code becomes dramatically slower.
//
//     go run ./examples/linearregression
package main

import (
	"fmt"
	"log"

	"predator/internal/core"
	"predator/internal/eval"
	"predator/internal/harness"

	_ "predator/internal/workloads/phoenix"
)

func main() {
	cfg := core.Config{
		TrackingThreshold:   50,
		PredictionThreshold: 100,
		ReportThreshold:     200,
		Prediction:          true,
	}
	w, _ := harness.Get("linear_regression")

	// Step 1: PREDATOR-NP at the clean placement.
	np := cfg
	np.Prediction = false
	res, err := harness.Execute(w, harness.Options{
		Mode: harness.ModeDetect, Threads: 8, Buggy: true, Runtime: &np,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1) PREDATOR-NP at the default placement: %d false sharing findings\n",
		len(res.Report.FalseSharing()))
	fmt.Println("   (the bug is latent — nothing physically shares a cache line)")

	// Step 2: full PREDATOR predicts it.
	res, err = harness.Execute(w, harness.Options{
		Mode: harness.ModePredict, Threads: 8, Buggy: true, Runtime: &cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs := res.Report.FalseSharing()
	fmt.Printf("\n2) Full PREDATOR: %d predicted false sharing findings. The first:\n\n",
		len(fs))
	if len(fs) > 0 {
		fmt.Println(fs[0].Format(res.Report.Geometry))
	}

	// Step 3: the Figure 2 placement sweep explains the danger.
	points, err := eval.Figure2(eval.Config{Threads: 8, Scale: 1, Repeats: 1, Runtime: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3) Placement sweep (deterministic cache-model cycles):")
	fmt.Print(eval.RenderFigure2(points))
}
