// Quickstart: detect false sharing between two goroutines with the public
// predator API in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

import "predator"

func main() {
	// A detector with thresholds scaled for this tiny example.
	cfg := predator.DefaultRuntimeConfig()
	cfg.TrackingThreshold = 10
	cfg.PredictionThreshold = 20
	cfg.ReportThreshold = 100
	cfg.SampleWindow = 0 // record everything
	d, err := predator.New(predator.Options{HeapSize: 8 << 20, Runtime: &cfg})
	if err != nil {
		log.Fatal(err)
	}

	// One 64-byte object; two threads hammer neighbouring words of it.
	alice := d.Thread("alice")
	bob := d.Thread("bob")
	addr, err := alice.AllocWithOffset(64, 0)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, w := range []struct {
		t    *predator.Thread
		word uint64
	}{{alice, addr}, {bob, addr + 8}} {
		wg.Add(1)
		go func(t *predator.Thread, word uint64) {
			defer wg.Done()
			for i := 0; i < 50000; i++ {
				t.Store64(word, uint64(i)) // false sharing: same line, distinct words
				if i%64 == 63 {
					runtime.Gosched() // keep goroutines interleaving on single-CPU hosts
				}
			}
		}(w.t, w.word)
	}
	wg.Wait()

	rep := d.Report()
	fmt.Printf("findings: %d (false sharing: %d)\n\n",
		len(rep.Findings), len(rep.FalseSharing()))
	for _, f := range rep.FalseSharing() {
		fmt.Println(f.Format(d.Geometry()))
	}
}
