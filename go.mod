module predator

go 1.22
